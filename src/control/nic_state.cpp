#include "control/nic_state.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

NicState::NicState(NodeId self, const CircuitSchedule& initial)
    : self_(self) {
  SORN_ASSERT(self >= 0 && self < initial.node_count(),
              "node id outside the schedule");
  auto& bank = banks_[0];
  bank.resize(static_cast<std::size_t>(initial.period()));
  for (Slot t = 0; t < initial.period(); ++t)
    bank[static_cast<std::size_t>(t)] = initial.dst_of(self_, t);
}

NodeId NicState::dst_at(Slot t) const {
  return active()[static_cast<std::size_t>(t % period())];
}

std::size_t NicState::stage(const CircuitSchedule& next) {
  SORN_ASSERT(self_ < next.node_count(), "node id outside the new schedule");
  auto& bank = banks_[1 - active_bank_];
  bank.resize(static_cast<std::size_t>(next.period()));
  for (Slot t = 0; t < next.period(); ++t)
    bank[static_cast<std::size_t>(t)] = next.dst_of(self_, t);
  staged_ = true;
  return bank.size();
}

std::vector<NodeId> NicState::drain_set() const {
  SORN_ASSERT(staged_, "no staged bank to compare against");
  auto distinct = [&](const std::vector<NodeId>& bank) {
    std::vector<NodeId> nbrs;
    for (const NodeId d : bank)
      if (d != self_ &&
          std::find(nbrs.begin(), nbrs.end(), d) == nbrs.end())
        nbrs.push_back(d);
    return nbrs;
  };
  const std::vector<NodeId> old_nbrs = distinct(active());
  const std::vector<NodeId> new_nbrs = distinct(shadow());
  std::vector<NodeId> drains;
  for (const NodeId d : old_nbrs)
    if (std::find(new_nbrs.begin(), new_nbrs.end(), d) == new_nbrs.end())
      drains.push_back(d);
  return drains;
}

void NicState::commit() {
  SORN_ASSERT(staged_, "commit requires a staged bank");
  active_bank_ = 1 - active_bank_;
  staged_ = false;
  ++version_;
}

std::vector<NicState> UpdateCoordinator::bootstrap(
    const CircuitSchedule& initial) const {
  std::vector<NicState> nics;
  nics.reserve(static_cast<std::size_t>(initial.node_count()));
  for (NodeId i = 0; i < initial.node_count(); ++i)
    nics.emplace_back(i, initial);
  return nics;
}

UpdateCoordinator::Report UpdateCoordinator::roll_out(
    std::vector<NicState>& nics, const CircuitSchedule& next) const {
  SORN_ASSERT(!nics.empty(), "no NICs to update");
  Report report;
  report.nodes = nics.size();
  for (NicState& nic : nics) {
    const std::size_t entries = nic.stage(next);
    report.total_entries += entries;
    report.drain_neighbors_total += nic.drain_set().size();
    const double node_us = options_.per_node_us +
                           options_.per_entry_us * static_cast<double>(entries);
    report.slowest_node_us = std::max(report.slowest_node_us, node_us);
  }
  // Synchronized flip after the slowest ack plus a guard.
  report.total_update_us = report.slowest_node_us + options_.commit_guard_us;
  const std::uint64_t target_version = nics.front().version() + 1;
  for (NicState& nic : nics) nic.commit();
  for (const NicState& nic : nics)
    SORN_ASSERT(nic.version() == target_version,
                "NIC versions diverged during rollout");
  return report;
}

}  // namespace sorn
