// The logically centralized control plane (paper Sec. 5).
//
// Periodically: ingest the epoch's observed traffic, update the estimate,
// and — when the macro pattern changed enough, or unconditionally on the
// first observation — re-plan the clique structure and oversubscription
// and stage a schedule swap. Deliberately slow-moving: it reacts to
// macro-scale structure, never to individual flows.
#pragma once

#include "control/control_faults.h"
#include "control/estimator.h"
#include "control/optimizer.h"
#include "control/reconfig.h"
#include "obs/prof/profiler.h"

namespace sorn {

class ControlPlane {
 public:
  struct Options {
    SornOptimizer::Options optimizer;
    ReconfigManager::Options reconfig;
    double estimator_alpha = 0.3;
    // Re-plan when macro_change() exceeds this (relative L1 of the
    // clique-level aggregate). 0 re-plans every epoch.
    double replan_threshold = 0.25;
    // Also re-plan when the estimate's locality under the current plan's
    // cliques has fallen this far below what the plan assumed — the plan
    // is stale even if epoch-to-epoch aggregates look steady again.
    double locality_degradation = 0.15;
  };

  // Borrowed failure state (usually &network.failure_view()). Two effects:
  // on_epoch re-plans whenever the failure set changed since the last plan
  // (traced with reason "failure"), and failed nodes are masked out of the
  // demand the optimizer clusters — a dead node stops attracting clique
  // slots at the next epoch instead of owning them forever. The view is
  // also forwarded to the reconfiguration manager so every generation's
  // router routes around the live failure set.
  void set_failure_view(const FailureView* view) {
    failures_ = view;
    reconfig_.set_failure_view(view);
  }

  ControlPlane(NodeId nodes, Options options);

  // Feed one epoch of observed traffic; stages a swap if warranted.
  // Returns true when a re-plan was triggered.
  bool on_epoch(const DemandModel& observed, Slot now);

  // Forward to the reconfiguration manager every slot. With a profiler
  // attached the interval is recorded as the control_tick phase (epoch
  // re-plans run inside on_epoch and land in the same phase — both are
  // control-plane work amortized over the slot cadence). While the fault
  // model reports the controller down, staged swaps are held: the network
  // keeps serving the last committed generation.
  bool tick(SlottedNetwork& network, Slot now) {
    ScopedPhase scope(profiler_ != nullptr ? &profiler_->phases() : nullptr,
                      ProfPhase::kControlTick);
    if (faults_ != nullptr && !faults_->controller_up()) return false;
    return reconfig_.tick(network, now);
  }

  // Borrowed control-plane fault model (control/control_faults.h). While
  // it reports the controller down, on_epoch drops the observation
  // (counted via note_suppressed_epoch) and tick holds staged swaps; when
  // up, observations pass through its staleness/noise filter. Also
  // installs the model's extra replan-apply delay into the reconfiguration
  // manager. nullptr detaches (and clears the extra delay).
  void set_fault_model(ControlFaultModel* faults) {
    faults_ = faults;
    reconfig_.set_extra_delay(faults != nullptr ? faults->extra_replan_delay()
                                                : 0);
  }

  const TrafficEstimator& estimator() const { return estimator_; }
  const ReconfigManager& reconfig() const { return reconfig_; }
  const SornPlan& last_plan() const { return last_plan_; }
  std::uint64_t replans() const { return replans_; }

  // Borrowed tracer for replan decisions (with trigger reason) and the
  // reconfiguration manager's staged/applied events; nullptr disables.
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    reconfig_.set_tracer(tracer);
  }

  // Borrowed profiler: tick() and on_epoch() time themselves under the
  // control_tick phase. nullptr detaches (one null check per tick).
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }

 private:
  Options options_;
  TrafficEstimator estimator_;
  SornOptimizer optimizer_;
  ReconfigManager reconfig_;
  SornPlan last_plan_;
  bool has_plan_ = false;
  std::uint64_t replans_ = 0;
  Tracer* tracer_ = nullptr;
  Profiler* profiler_ = nullptr;
  const FailureView* failures_ = nullptr;
  ControlFaultModel* faults_ = nullptr;
  // FailureView::version() at the time of the last plan; a mismatch at
  // the next epoch triggers a failure re-plan.
  std::uint64_t planned_failure_version_ = 0;
};

}  // namespace sorn
