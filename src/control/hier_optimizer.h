// Two-level planning: recover a pods-in-clusters hierarchy from a measured
// traffic matrix (the Sec. 6 extension's control-plane side).
//
// Recursive balanced clustering: first split nodes into clusters
// (maximizing within-cluster demand), then split each cluster's members
// into pods. The result is a relabeling that places each node at a
// position of a *regular* Hierarchy — the form the hierarchical schedule
// builder requires — plus the locality split and optimal slot shares.
#pragma once

#include <vector>

#include <memory>

#include "analysis/models.h"
#include "control/clustering.h"
#include "topo/hierarchy.h"
#include "traffic/traffic_matrix.h"

namespace sorn {

struct HierPlan {
  // position_of_node[v] is v's position in the regular hierarchy's node
  // space (cluster-major, then pod-major).
  std::vector<NodeId> position_of_node;
  CliqueId clusters = 0;
  CliqueId pods_per_cluster = 0;
  double x1 = 0.0;  // pod locality of the estimate under the plan
  double x2 = 0.0;  // cluster locality
  analysis::HierSharesApprox shares;
  double predicted_throughput = 0.0;

  Hierarchy hierarchy(NodeId nodes) const {
    return Hierarchy::regular(nodes, clusters, pods_per_cluster);
  }
};

// Zero-copy reindexing into hierarchy-position space: entry (pos_i, pos_j)
// reads tm(i, j) through the inverse permutation. Borrows the base model —
// keep it alive for the view's lifetime. Read-only statistics only
// (sampling through a permutation view is not supported).
class PermutedDemandView : public DemandModel {
 public:
  PermutedDemandView(const DemandModel& base,
                     const std::vector<NodeId>& position_of_node);

  NodeId node_count() const override { return base_->node_count(); }
  double at(NodeId src, NodeId dst) const override {
    return base_->at(node_at_[static_cast<std::size_t>(src)],
                     node_at_[static_cast<std::size_t>(dst)]);
  }
  std::pair<NodeId, NodeId> sample_pair(Rng& rng) const override;
  NodeId sample_dst(NodeId src, Rng& rng) const override;
  std::unique_ptr<DemandModel> clone() const override;
  std::size_t memory_bytes() const override {
    return node_at_.capacity() * sizeof(NodeId);
  }
  DemandBackend backend() const override { return base_->backend(); }

 private:
  const DemandModel* base_;
  std::vector<NodeId> node_at_;  // inverse: node at each position
};

// Reindex a matrix into hierarchy-position space, materialized dense:
// entry (pos_i, pos_j) of the result equals tm(i, j).
TrafficMatrix permute_matrix(const DemandModel& tm,
                             const std::vector<NodeId>& position_of_node);

class HierOptimizer {
 public:
  struct Options {
    CliqueId clusters = 4;
    CliqueId pods_per_cluster = 4;
    int share_scale = 12;
    CliqueClusterer::Options clusterer;
  };

  HierOptimizer() : HierOptimizer(Options()) {}
  explicit HierOptimizer(Options options);

  // tm.node_count() must divide evenly into clusters * pods_per_cluster.
  HierPlan plan(const DemandModel& estimate) const;

 private:
  Options options_;
  CliqueClusterer clusterer_;
};

}  // namespace sorn
