// Two-level planning: recover a pods-in-clusters hierarchy from a measured
// traffic matrix (the Sec. 6 extension's control-plane side).
//
// Recursive balanced clustering: first split nodes into clusters
// (maximizing within-cluster demand), then split each cluster's members
// into pods. The result is a relabeling that places each node at a
// position of a *regular* Hierarchy — the form the hierarchical schedule
// builder requires — plus the locality split and optimal slot shares.
#pragma once

#include <vector>

#include "analysis/models.h"
#include "control/clustering.h"
#include "topo/hierarchy.h"

namespace sorn {

struct HierPlan {
  // position_of_node[v] is v's position in the regular hierarchy's node
  // space (cluster-major, then pod-major).
  std::vector<NodeId> position_of_node;
  CliqueId clusters = 0;
  CliqueId pods_per_cluster = 0;
  double x1 = 0.0;  // pod locality of the estimate under the plan
  double x2 = 0.0;  // cluster locality
  analysis::HierSharesApprox shares;
  double predicted_throughput = 0.0;

  Hierarchy hierarchy(NodeId nodes) const {
    return Hierarchy::regular(nodes, clusters, pods_per_cluster);
  }
};

// Reindex a matrix into hierarchy-position space: entry (pos_i, pos_j) of
// the result equals tm(i, j).
TrafficMatrix permute_matrix(const TrafficMatrix& tm,
                             const std::vector<NodeId>& position_of_node);

class HierOptimizer {
 public:
  struct Options {
    CliqueId clusters = 4;
    CliqueId pods_per_cluster = 4;
    int share_scale = 12;
    CliqueClusterer::Options clusterer;
  };

  HierOptimizer() : HierOptimizer(Options()) {}
  explicit HierOptimizer(Options options);

  // tm.node_count() must divide evenly into clusters * pods_per_cluster.
  HierPlan plan(const TrafficMatrix& estimate) const;

 private:
  Options options_;
  CliqueClusterer clusterer_;
};

}  // namespace sorn
