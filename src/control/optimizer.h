// Choosing the SORN macro-configuration from a demand estimate.
//
// For each candidate clique count Nc the optimizer clusters the estimate,
// reads off the locality x, sets q = q*(x) = 2/(1-x) (rationalized so the
// schedule period stays bounded), and predicts throughput and intrinsic
// latency from the closed forms. The plan with the best score wins; the
// score trades predicted throughput against mean intrinsic latency the way
// the paper's Table 1 discussion does.
#pragma once

#include <vector>

#include "control/clustering.h"
#include "topo/schedule_builder.h"
#include "traffic/demand_model.h"

namespace sorn {

struct SornPlan {
  CliqueAssignment cliques;
  Rational q;
  // Non-empty: clique-level demand aggregate to encode into the inter
  // slots via ScheduleBuilder::sorn_weighted. Empty: uniform inter
  // round-robin.
  std::vector<double> inter_weights;
  double locality_x = 0.0;
  double predicted_throughput = 0.0;
  double predicted_delta_m_intra = 0.0;
  double predicted_delta_m_inter = 0.0;
  // Locality-weighted mean of the intra/inter intrinsic latencies.
  double predicted_mean_delta_m = 0.0;
};

class SornOptimizer {
 public:
  struct Options {
    // Candidate clique counts (must divide the node count; invalid
    // candidates are skipped).
    std::vector<CliqueId> candidate_nc = {4, 8, 16, 32, 64};
    // Cap on the rationalized q's denominator (bounds schedule period).
    std::int64_t max_q_denominator = 12;
    // Cap on q itself: at x -> 1 the optimum diverges, but very large q
    // starves inter-clique bandwidth for no throughput gain.
    double max_q = 64.0;
    // Score = predicted_throughput - latency_weight * mean_delta_m / N.
    double latency_weight = 0.5;
    // Encode the measured clique-level aggregate into the inter slots
    // (weighted schedules) instead of assuming uniform aggregate demand.
    bool weighted_inter = false;
  };

  SornOptimizer() : SornOptimizer(Options()) {}
  explicit SornOptimizer(Options options);

  // Best plan for the given demand estimate.
  SornPlan plan(const DemandModel& estimate) const;

  // Plan for one fixed Nc (used by ablations and by callers that pin the
  // clique structure).
  SornPlan plan_for_nc(const DemandModel& estimate, CliqueId nc) const;

 private:
  Options options_;
  CliqueClusterer clusterer_;
};

}  // namespace sorn
