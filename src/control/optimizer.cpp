#include "control/optimizer.h"

#include <algorithm>

#include "analysis/models.h"
#include "util/assert.h"

namespace sorn {

SornOptimizer::SornOptimizer(Options options) : options_(std::move(options)) {}

SornPlan SornOptimizer::plan_for_nc(const DemandModel& estimate,
                                    CliqueId nc) const {
  const NodeId n = estimate.node_count();
  SORN_ASSERT(nc >= 1 && n % nc == 0, "invalid clique count for this N");
  SornPlan p;
  p.cliques = clusterer_.cluster(estimate, nc);
  p.locality_x = estimate.locality_ratio(p.cliques);
  if (options_.weighted_inter && nc >= 2 && n / nc >= 2)
    p.inter_weights = estimate.aggregate(p.cliques);
  const double q_star =
      std::min(options_.max_q,
               analysis::sorn_optimal_q(p.locality_x, options_.max_q));
  p.q = Rational::approximate(std::max(1.0, q_star),
                              options_.max_q_denominator);
  p.predicted_throughput =
      analysis::sorn_throughput_at_q(p.locality_x, p.q.value());
  if (nc >= 2 && n / nc >= 2) {
    p.predicted_delta_m_intra =
        analysis::sorn_delta_m_intra(n, nc, p.q.value());
    p.predicted_delta_m_inter =
        analysis::sorn_delta_m_inter_table(n, nc, p.q.value());
  } else if (nc == 1) {
    p.predicted_delta_m_intra = static_cast<double>(n - 1);
    p.predicted_delta_m_inter = 0.0;
  } else {  // singleton cliques: flat inter round robin
    p.predicted_delta_m_intra = 0.0;
    p.predicted_delta_m_inter = static_cast<double>(n - 1);
  }
  p.predicted_mean_delta_m =
      p.locality_x * p.predicted_delta_m_intra +
      (1.0 - p.locality_x) * p.predicted_delta_m_inter;
  return p;
}

SornPlan SornOptimizer::plan(const DemandModel& estimate) const {
  const NodeId n = estimate.node_count();
  SornPlan best;
  double best_score = -1e300;
  bool found = false;
  for (const CliqueId nc : options_.candidate_nc) {
    if (nc < 1 || nc > n || n % nc != 0) continue;
    SornPlan p = plan_for_nc(estimate, nc);
    const double score =
        p.predicted_throughput -
        options_.latency_weight * p.predicted_mean_delta_m /
            static_cast<double>(n);
    if (!found || score > best_score) {
      best = std::move(p);
      best_score = score;
      found = true;
    }
  }
  SORN_ASSERT(found, "no valid clique count among the candidates");
  return best;
}

}  // namespace sorn
