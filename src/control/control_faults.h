// Control-plane fault model: controller outages, slow replan application,
// and degraded traffic estimates.
//
// The data plane in this simulator is deliberately robust to a silent
// controller — slots keep firing from the last committed schedule — but
// nothing exercised that property. This model makes the controller itself
// a fault domain:
//
//   Outages — scripted [start, end) windows and/or a stochastic MTBF/MTTR
//   state machine. While the controller is down, ControlPlane::on_epoch is
//   suppressed (observations are lost, not queued) and staged swaps are
//   held (ControlPlane::tick returns false), so the network keeps serving
//   the last committed generation.
//
//   Delayed replans — extra slots added to the reconfiguration manager's
//   update delay, modeling a congested or degraded state-distribution
//   path.
//
//   Degraded estimates — the observation fed to the estimator can be
//   stale (the matrix from K epochs ago) and/or perturbed with seeded
//   multiplicative noise, modeling a telemetry pipeline that lags or
//   lies.
//
// Determinism contract: tick() once per slot and filter() once per epoch,
// both from the coordinating thread. All randomness comes from the model's
// own Rng streams, so the outage timeline and the noise are functions of
// the seed alone — byte-identical at any --threads setting.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "traffic/sparse_demand.h"
#include "util/rng.h"
#include "util/time.h"

namespace sorn {

struct ControlFaultOptions {
  // Scripted outage windows [start, end) in slots; overlapping windows
  // merge naturally (the controller is down while inside any of them).
  std::vector<std::pair<Slot, Slot>> outages;
  // Stochastic outage model: while up the controller fails at rate
  // 1/mtbf, while down it recovers at rate 1/mttr (memoryless, like the
  // data-plane injector). 0 disables; when enabled the MTTR must be
  // positive.
  double mtbf_slots = 0.0;
  double mttr_slots = 0.0;
  std::uint64_t seed = 1;
  // Extra slots between a replan and its application, on top of
  // ReconfigManager::Options::update_delay_slots.
  Slot replan_apply_delay = 0;
  // Feed the optimizer the observation from this many epochs ago
  // (0 = fresh). The first epochs, before the lag is filled, see the
  // oldest available observation.
  std::uint32_t estimate_stale_epochs = 0;
  // Per-entry multiplicative noise amplitude in [0, 1]: each rate is
  // scaled by a seeded uniform factor in [1 - noise, 1 + noise].
  double estimate_noise = 0.0;
};

class ControlFaultModel {
 public:
  explicit ControlFaultModel(ControlFaultOptions options);

  // Advance the outage state machine to `now`. Call once per slot from
  // the coordinating thread, before the control plane's epoch/tick work.
  // Returns true when the controller's up/down state changed this slot
  // (also fires the tracer's controller_down / controller_up events).
  bool tick(Slot now);

  bool controller_up() const { return up_; }

  // Degrade one epoch's observation per the staleness/noise options and
  // return the demand the controller believes it measured. The reference
  // stays valid until the next filter() call. With staleness and noise
  // both off this is the identity (no copy). Staleness history holds
  // backend handles (DemandModel::clone), so a sparse or procedural
  // observation never costs an N^2 copy; noise is applied as a seeded
  // sparse overlay built from the source's nonzeros (same RNG order as the
  // historical dense loop, which skipped zero entries without drawing).
  const DemandModel& filter(const DemandModel& observed);

  // Staleness-history introspection (regression-tested: the history stays
  // bounded by estimate_stale_epochs + 1 entries over arbitrarily long
  // runs).
  std::size_t history_entries() const { return history_.size(); }
  std::size_t history_bytes() const;

  // Extra replan-application latency to install into the reconfiguration
  // manager (ControlPlane::set_fault_model does this).
  Slot extra_replan_delay() const { return options_.replan_apply_delay; }

  // Epochs whose observations were dropped because the controller was
  // down (counted by the control plane).
  void note_suppressed_epoch() { ++suppressed_epochs_; }
  std::uint64_t suppressed_epochs() const { return suppressed_epochs_; }

  // Completed down->up ... transitions and total slots spent down.
  std::uint64_t outages_started() const { return outages_started_; }
  std::uint64_t outage_slots() const { return outage_slots_; }

  // Borrowed tracer for controller_down/controller_up; nullptr disables.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  bool scripted_down(Slot now) const;

  static constexpr Slot kNone = -1;

  ControlFaultOptions options_;
  Rng outage_rng_;
  Rng noise_rng_;
  bool up_ = true;
  bool stochastic_up_ = true;
  Slot next_transition_ = kNone;  // next stochastic flip, kNone = none
  std::uint64_t suppressed_epochs_ = 0;
  std::uint64_t outages_started_ = 0;
  std::uint64_t outage_slots_ = 0;
  // Observation history for staleness; back = newest. Bounded by
  // estimate_stale_epochs + 1.
  std::deque<std::unique_ptr<const DemandModel>> history_;
  std::unique_ptr<const SparseDemand> degraded_;
  Tracer* tracer_ = nullptr;
};

}  // namespace sorn
