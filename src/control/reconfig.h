// Epoch-synchronous reconfiguration of a running network (paper Sec. 5).
//
// The manager materializes a SornPlan into a schedule + router, then swaps
// them into the SlottedNetwork after a modeled control-plane update delay
// (state distribution to all NICs, a few seconds in practice — here a
// configurable number of slots). The previous generation's objects are
// kept alive until the next swap so in-flight cells routed under them can
// finish; this is safe because every generated schedule keeps the full
// neighbor superset reachable.
#pragma once

#include <memory>
#include <optional>

#include "obs/trace.h"
#include "control/nic_state.h"
#include "control/optimizer.h"
#include "routing/sorn_routing.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {

class ReconfigManager {
 public:
  struct Options {
    // Slots between request_swap() and the swap becoming effective.
    Slot update_delay_slots = 0;
    LbMode lb_mode = LbMode::kRandom;
    Slot max_period = 1 << 22;
    // Used when the plan carries inter_weights (weighted schedules).
    ScheduleBuilder::WeightedOptions weighted;
    // Model the NIC-level rollout (Fig. 2c banked tables) on every swap
    // and expose the cost via last_rollout(). Adds O(N * period) work per
    // swap.
    bool track_nic_rollout = false;
    UpdateCoordinator::Options nic;
  };

  ReconfigManager() : ReconfigManager(Options()) {}
  explicit ReconfigManager(Options options);

  // Materialize the plan (builds the schedule and router; O(N * period)).
  // The swap itself happens in tick() once the delay elapses.
  void request_swap(SornPlan plan, Slot now);

  // Call every slot; performs the pending swap when due. Returns true on
  // the slot the swap is applied.
  bool tick(SlottedNetwork& network, Slot now);

  bool swap_pending() const { return pending_ != nullptr; }
  std::uint64_t swaps_applied() const { return swaps_applied_; }

  // Borrowed tracer for reconfig_staged/reconfig_applied events; nullptr
  // disables.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Extra slots added on top of update_delay_slots for swaps staged from
  // now on (control-plane fault model: degraded state-distribution path).
  void set_extra_delay(Slot extra) { extra_delay_ = extra; }
  Slot extra_delay() const { return extra_delay_; }

  // Borrowed failure state (usually &network.failure_view()): every
  // generation's router — current, pending, and all future ones — routes
  // around it (Router::set_failure_view). nullptr detaches.
  void set_failure_view(const FailureView* view);

  // NIC rollout cost of the most recent applied swap; nullopt until a
  // swap happened with track_nic_rollout enabled.
  const std::optional<UpdateCoordinator::Report>& last_rollout() const {
    return last_rollout_;
  }

  // Current generation (null before the first swap).
  const CircuitSchedule* schedule() const { return current_.schedule.get(); }
  const Router* router() const { return current_.router.get(); }
  const CliqueAssignment* cliques() const { return current_.cliques.get(); }

 private:
  struct Generation {
    std::unique_ptr<CliqueAssignment> cliques;
    std::unique_ptr<CircuitSchedule> schedule;
    std::unique_ptr<Router> router;
  };

  Options options_;
  const FailureView* failures_ = nullptr;
  Generation current_;
  Generation previous_;  // kept alive for in-flight traffic
  std::unique_ptr<Generation> pending_;
  Slot swap_due_ = 0;
  Slot extra_delay_ = 0;
  std::uint64_t swaps_applied_ = 0;
  std::vector<NicState> nics_;
  std::optional<UpdateCoordinator::Report> last_rollout_;
  Tracer* tracer_ = nullptr;
};

}  // namespace sorn
