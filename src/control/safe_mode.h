// Data-plane safe mode for controller outages.
//
// When the control plane goes dark (ControlFaultModel::controller_up()
// flips false) the network must keep moving cells with no fresh plans.
// Two policies:
//
//   kHold — keep serving the last committed schedule/router. Nothing is
//   swapped; the guard only accounts for the episode and traces it. This
//   is the semi-oblivious design's natural behavior: the committed SORN
//   schedule is itself oblivious-safe for the traffic it was planned for.
//
//   kVlb — swap to a pure-oblivious floor: the round-robin schedule plus
//   2-hop VLB routing (the Sirius/Shoal baseline). Throughput drops to
//   ~0.5 but becomes traffic-agnostic — the worst-case-safe floor the
//   paper's semi-oblivious argument leans on. On recovery the schedule
//   and router that were live at outage onset are restored.
//
// The restore is safe because ControlPlane::tick() holds staged swaps
// while the controller is down: the saved generation's objects stay alive
// in the ReconfigManager (or the design) for the whole outage.
//
// Call on_controller_state() once per slot from the coordinating thread,
// after ControlFaultModel::tick and before the network steps. The guard
// performs no RNG draws, so attaching it never perturbs seeded runs.
#pragma once

#include <cstdint>

#include "obs/trace.h"
#include "routing/vlb.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {

enum class SafeModePolicy : std::uint8_t { kHold, kVlb };

class SafeModeGuard {
 public:
  SafeModeGuard(NodeId nodes, SafeModePolicy policy);

  // Drive the guard with the controller's current state. Enters safe mode
  // on an up->down edge, exits (restoring the saved generation under
  // kVlb) on down->up.
  void on_controller_state(SlottedNetwork& net, bool controller_up, Slot now);

  bool active() const { return active_; }
  SafeModePolicy policy() const { return policy_; }
  std::uint64_t activations() const { return activations_; }
  std::uint64_t slots_in_safe_mode() const { return safe_slots_; }

  // Borrowed tracer for safe_mode_enter/safe_mode_exit; nullptr disables.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  SafeModePolicy policy_;
  // The oblivious floor, owned by the guard so entering safe mode never
  // allocates: round-robin schedule + VLB with the deterministic
  // first-available intermediate rule (no RNG consumption).
  CircuitSchedule fallback_schedule_;
  VlbRouter fallback_router_;
  // The generation live at outage onset (borrowed; kept alive by its
  // owner — see header comment).
  const CircuitSchedule* saved_schedule_ = nullptr;
  const Router* saved_router_ = nullptr;
  bool active_ = false;
  std::uint64_t activations_ = 0;
  std::uint64_t safe_slots_ = 0;
  Tracer* tracer_ = nullptr;
};

}  // namespace sorn
