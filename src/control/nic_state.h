// Per-node NIC hardware state for schedule updates (paper Fig. 2(c), §5).
//
// In a Sirius-style fabric the circuit schedule lives entirely at the
// nodes: each NIC holds a wavelength table (slot -> wavelength, i.e.
// slot -> neighbor) and per-neighbor queues. The paper argues updates are
// cheap because (a) the neighbor *superset* is fixed — only per-neighbor
// bandwidth changes — so no queue state is created or destroyed, and
// (b) tables can be double-banked: the control plane stages the next
// schedule into a shadow bank and all nodes flip banks at an agreed slot.
//
// NicState models exactly that: two banks, versioning, staging cost in
// table entries, and the drain set (neighbors that lose all circuits in
// the new schedule — their queued cells must drain via the swap-over
// period; SORN-to-SORN swaps have an empty drain set).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/schedule.h"
#include "util/types.h"

namespace sorn {

class NicState {
 public:
  // Initialize with the node's row of the initial schedule.
  NicState(NodeId self, const CircuitSchedule& initial);

  NodeId self() const { return self_; }
  std::uint64_t version() const { return version_; }
  bool has_staged() const { return staged_; }

  // Active-bank lookup: whom this NIC transmits to in slot t.
  NodeId dst_at(Slot t) const;
  Slot period() const { return static_cast<Slot>(active().size()); }

  // Stage the node's row of `next` into the shadow bank. Returns the
  // number of table entries written — the control-plane message cost for
  // this node (the paper's "update state at each node").
  std::size_t stage(const CircuitSchedule& next);

  // Neighbors with at least one circuit in the active bank but none in
  // the staged bank: their queues can no longer drain after the flip and
  // must be emptied during the changeover. Empty for any pair of
  // schedules that both keep the full neighbor superset.
  std::vector<NodeId> drain_set() const;

  // Flip banks; requires a staged bank. Bumps the version.
  void commit();

 private:
  const std::vector<NodeId>& active() const { return banks_[active_bank_]; }
  const std::vector<NodeId>& shadow() const { return banks_[1 - active_bank_]; }

  NodeId self_;
  std::vector<NodeId> banks_[2];  // slot -> destination node
  int active_bank_ = 0;
  bool staged_ = false;
  std::uint64_t version_ = 1;
};

// Logically centralized distribution of a schedule update to every NIC
// (paper §5: "a logically centralized control plane to synchronously
// update state across nodes within a few seconds").
class UpdateCoordinator {
 public:
  struct Options {
    // Modeled one-way control-plane latency per staged table entry and
    // fixed per-node overhead, in microseconds.
    double per_entry_us = 0.01;
    double per_node_us = 50.0;
    // Commit guard added after the slowest node acks.
    double commit_guard_us = 100.0;
  };

  struct Report {
    std::size_t nodes = 0;
    std::size_t total_entries = 0;
    double slowest_node_us = 0.0;
    // Wall-clock from update start to the synchronized flip.
    double total_update_us = 0.0;
    std::size_t drain_neighbors_total = 0;
  };

  UpdateCoordinator() : UpdateCoordinator(Options()) {}
  explicit UpdateCoordinator(Options options) : options_(options) {}

  // Build per-node NIC state for an initial schedule.
  std::vector<NicState> bootstrap(const CircuitSchedule& initial) const;

  // Stage `next` on every NIC and commit all banks; returns the cost
  // report. All NICs end at the same version.
  Report roll_out(std::vector<NicState>& nics,
                  const CircuitSchedule& next) const;

 private:
  Options options_;
};

}  // namespace sorn
