#include "control/clustering.h"

#include <algorithm>
#include <vector>

#include "util/assert.h"

namespace sorn {
namespace {

// Symmetric affinity: demand in both directions. Built from the nonzeros
// (IEEE addition is commutative and adding to a 0.0 cell is exact, so the
// result is bit-identical to at(i, j) + at(j, i) per cell).
std::vector<double> affinity_matrix(const DemandModel& tm) {
  const NodeId n = tm.node_count();
  std::vector<double> a(static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(n),
                        0.0);
  tm.for_each_nonzero([&a, n](NodeId i, NodeId j, double d) {
    a[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
      static_cast<std::size_t>(j)] += d;
    a[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
      static_cast<std::size_t>(i)] += d;
  });
  return a;
}

}  // namespace

CliqueClusterer::CliqueClusterer(Options options) : options_(options) {}

double CliqueClusterer::objective(const DemandModel& tm,
                                  const CliqueAssignment& cliques) {
  return tm.locality_ratio(cliques);
}

CliqueAssignment CliqueClusterer::cluster(const DemandModel& tm,
                                          CliqueId nc) const {
  const NodeId n = tm.node_count();
  SORN_ASSERT(nc >= 1 && n % nc == 0,
              "node count must divide into nc equal cliques");
  const NodeId size = n / nc;
  const std::vector<double> aff = affinity_matrix(tm);
  auto aff_at = [&](NodeId i, NodeId j) {
    return aff[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(j)];
  };

  std::vector<CliqueId> assign(static_cast<std::size_t>(n), -1);
  std::vector<bool> taken(static_cast<std::size_t>(n), false);

  // Greedy growth: seed each clique with the heaviest unassigned node,
  // then repeatedly add the unassigned node with the highest affinity to
  // the clique's current members.
  for (CliqueId c = 0; c < nc; ++c) {
    NodeId seed = kNoNode;
    double best_weight = -1.0;
    for (NodeId i = 0; i < n; ++i) {
      if (taken[static_cast<std::size_t>(i)]) continue;
      double w = 0.0;
      for (NodeId j = 0; j < n; ++j) w += aff_at(i, j);
      if (w > best_weight) {
        best_weight = w;
        seed = i;
      }
    }
    std::vector<NodeId> members{seed};
    taken[static_cast<std::size_t>(seed)] = true;
    assign[static_cast<std::size_t>(seed)] = c;
    while (static_cast<NodeId>(members.size()) < size) {
      NodeId best = kNoNode;
      double best_gain = -1.0;
      for (NodeId i = 0; i < n; ++i) {
        if (taken[static_cast<std::size_t>(i)]) continue;
        double gain = 0.0;
        for (const NodeId m : members) gain += aff_at(i, m);
        if (gain > best_gain) {
          best_gain = gain;
          best = i;
        }
      }
      members.push_back(best);
      taken[static_cast<std::size_t>(best)] = true;
      assign[static_cast<std::size_t>(best)] = c;
    }
  }

  // Pairwise swap refinement: exchange nodes across cliques while it
  // improves total intra-clique affinity. Gain of swapping i <-> j
  // (different cliques): both lose affinity to their old clique-mates and
  // gain the other's (excluding the pair itself, which stays inter).
  std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(nc));
  for (NodeId i = 0; i < n; ++i)
    members[static_cast<std::size_t>(assign[static_cast<std::size_t>(i)])]
        .push_back(i);
  auto clique_affinity = [&](NodeId i, CliqueId c) {
    double w = 0.0;
    for (const NodeId m : members[static_cast<std::size_t>(c)])
      if (m != i) w += aff_at(i, m);
    return w;
  };
  for (int pass = 0; pass < options_.refine_passes; ++pass) {
    bool improved = false;
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        const CliqueId ci = assign[static_cast<std::size_t>(i)];
        const CliqueId cj = assign[static_cast<std::size_t>(j)];
        if (ci == cj) continue;
        const double before = clique_affinity(i, ci) + clique_affinity(j, cj);
        const double after = clique_affinity(i, cj) + clique_affinity(j, ci) -
                             2.0 * aff_at(i, j);
        if (after > before + 1e-12) {
          auto& mi = members[static_cast<std::size_t>(ci)];
          auto& mj = members[static_cast<std::size_t>(cj)];
          *std::find(mi.begin(), mi.end(), i) = j;
          *std::find(mj.begin(), mj.end(), j) = i;
          std::swap(assign[static_cast<std::size_t>(i)],
                    assign[static_cast<std::size_t>(j)]);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  return CliqueAssignment(std::move(assign));
}

}  // namespace sorn
