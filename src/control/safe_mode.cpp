#include "control/safe_mode.h"

#include "util/assert.h"

namespace sorn {

SafeModeGuard::SafeModeGuard(NodeId nodes, SafeModePolicy policy)
    : policy_(policy),
      fallback_schedule_(ScheduleBuilder::round_robin(nodes)),
      fallback_router_(&fallback_schedule_, LbMode::kFirstAvailable) {}

void SafeModeGuard::on_controller_state(SlottedNetwork& net,
                                        bool controller_up, Slot now) {
  SORN_ASSERT(!net.in_parallel_sweep(),
              "safe-mode transition during parallel sweep");
  if (active_) ++safe_slots_;
  if (!controller_up && !active_) {
    active_ = true;
    ++activations_;
    if (policy_ == SafeModePolicy::kVlb) {
      saved_schedule_ = net.schedule();
      saved_router_ = net.router();
      fallback_router_.set_failure_view(&net.failure_view());
      net.reconfigure(&fallback_schedule_, &fallback_router_);
    }
    if (tracer_ != nullptr) {
      tracer_->safe_mode_enter(now,
                               policy_ == SafeModePolicy::kVlb ? "vlb"
                                                               : "hold");
    }
  } else if (controller_up && active_) {
    active_ = false;
    if (policy_ == SafeModePolicy::kVlb) {
      net.reconfigure(saved_schedule_, saved_router_);
      saved_schedule_ = nullptr;
      saved_router_ = nullptr;
    }
    if (tracer_ != nullptr) tracer_->safe_mode_exit(now);
  }
}

}  // namespace sorn
