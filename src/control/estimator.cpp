#include "control/estimator.h"

#include <cmath>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace sorn {

namespace {

// All-zero sparse matrix of the given size (the pre-observation state).
std::unique_ptr<SparseDemand> empty_demand(NodeId nodes) {
  return SparseDemand::Builder(nodes).build(false);
}

struct Coo {
  std::vector<NodeId> rows;
  std::vector<NodeId> cols;
  std::vector<double> vals;
};

Coo to_coo(const DemandModel& model) {
  Coo coo;
  model.for_each_nonzero([&coo](NodeId i, NodeId j, double d) {
    coo.rows.push_back(i);
    coo.cols.push_back(j);
    coo.vals.push_back(d);
  });
  return coo;
}

}  // namespace

TrafficEstimator::TrafficEstimator(NodeId nodes, double alpha)
    : nodes_(nodes),
      alpha_(alpha),
      smoothed_(empty_demand(nodes)),
      latest_(empty_demand(nodes)) {
  SORN_ASSERT(alpha > 0.0 && alpha <= 1.0, "EWMA weight must be in (0,1]");
}

void TrafficEstimator::observe(const DemandModel& epoch) {
  SORN_ASSERT(epoch.node_count() == nodes_, "observation size mismatch");
  // Normalize the observation so magnitudes are comparable across epochs.
  auto obs = SparseDemand::from_model(epoch, /*normalize=*/true);
  const double keep = observations_ == 0 ? 0.0 : 1.0 - alpha_;
  const double add = observations_ == 0 ? 1.0 : alpha_;

  // Merge the sorted supports of the smoothed estimate and the new
  // observation; every union entry gets keep * s + add * o with absent
  // values an exact 0.0 — the dense per-cell expression bit-for-bit.
  const Coo s = to_coo(*smoothed_);
  const Coo o = to_coo(*obs);
  Coo merged;
  const std::size_t reserve = s.vals.size() + o.vals.size();
  merged.rows.reserve(reserve);
  merged.cols.reserve(reserve);
  merged.vals.reserve(reserve);
  std::size_t a = 0;
  std::size_t b = 0;
  auto key = [](const Coo& coo, std::size_t k) {
    return (static_cast<std::uint64_t>(coo.rows[k]) << 32) |
           static_cast<std::uint32_t>(coo.cols[k]);
  };
  while (a < s.vals.size() || b < o.vals.size()) {
    NodeId row;
    NodeId col;
    double sv = 0.0;
    double ov = 0.0;
    if (b >= o.vals.size() ||
        (a < s.vals.size() && key(s, a) < key(o, b))) {
      row = s.rows[a];
      col = s.cols[a];
      sv = s.vals[a];
      ++a;
    } else if (a >= s.vals.size() || key(o, b) < key(s, a)) {
      row = o.rows[b];
      col = o.cols[b];
      ov = o.vals[b];
      ++b;
    } else {
      row = s.rows[a];
      col = s.cols[a];
      sv = s.vals[a];
      ov = o.vals[b];
      ++a;
      ++b;
    }
    merged.rows.push_back(row);
    merged.cols.push_back(col);
    merged.vals.push_back(keep * sv + add * ov);
  }
  smoothed_ = std::make_unique<SparseDemand>(
      nodes_, std::move(merged.rows), std::move(merged.cols),
      std::move(merged.vals));
  latest_ = std::move(obs);
  ++observations_;

  if (reference_.has_value()) {
    const std::vector<double> agg = latest_->aggregate(*reference_);
    if (!last_aggregate_.empty()) {
      double diff = 0.0;
      double total = 0.0;
      for (std::size_t k = 0; k < agg.size(); ++k) {
        diff += std::abs(agg[k] - last_aggregate_[k]);
        total += agg[k];
      }
      macro_change_ = total > 0.0 ? diff / total : 0.0;
    }
    last_aggregate_ = agg;
  }
}

void TrafficEstimator::reset_to_latest() {
  SORN_ASSERT(observations_ > 0, "nothing observed yet");
  smoothed_ = SparseDemand::from_model(*latest_);
}

double TrafficEstimator::locality(const CliqueAssignment& cliques) const {
  return smoothed_->locality_ratio(cliques);
}

void TrafficEstimator::set_reference_grouping(
    const CliqueAssignment& cliques) {
  SORN_ASSERT(cliques.node_count() == nodes_, "grouping size mismatch");
  reference_ = cliques;
  last_aggregate_.clear();
  macro_change_.reset();
}

}  // namespace sorn
