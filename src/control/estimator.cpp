#include "control/estimator.h"

#include <cmath>

#include "util/assert.h"

namespace sorn {

TrafficEstimator::TrafficEstimator(NodeId nodes, double alpha)
    : alpha_(alpha), smoothed_(nodes), latest_(nodes) {
  SORN_ASSERT(alpha > 0.0 && alpha <= 1.0, "EWMA weight must be in (0,1]");
}

void TrafficEstimator::observe(const TrafficMatrix& epoch) {
  SORN_ASSERT(epoch.node_count() == smoothed_.node_count(),
              "observation size mismatch");
  const NodeId n = smoothed_.node_count();
  // Normalize the observation so magnitudes are comparable across epochs.
  TrafficMatrix obs = epoch;
  obs.normalize_node_load();
  const double keep = observations_ == 0 ? 0.0 : 1.0 - alpha_;
  const double add = observations_ == 0 ? 1.0 : alpha_;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = 0; j < n; ++j)
      if (i != j)
        smoothed_.set(i, j, keep * smoothed_.at(i, j) + add * obs.at(i, j));
  latest_ = obs;
  ++observations_;

  if (reference_.has_value()) {
    const std::vector<double> agg = obs.aggregate(*reference_);
    if (!last_aggregate_.empty()) {
      double diff = 0.0;
      double total = 0.0;
      for (std::size_t k = 0; k < agg.size(); ++k) {
        diff += std::abs(agg[k] - last_aggregate_[k]);
        total += agg[k];
      }
      macro_change_ = total > 0.0 ? diff / total : 0.0;
    }
    last_aggregate_ = agg;
  }
}

void TrafficEstimator::reset_to_latest() {
  SORN_ASSERT(observations_ > 0, "nothing observed yet");
  smoothed_ = latest_;
}

double TrafficEstimator::locality(const CliqueAssignment& cliques) const {
  return smoothed_.locality_ratio(cliques);
}

void TrafficEstimator::set_reference_grouping(
    const CliqueAssignment& cliques) {
  SORN_ASSERT(cliques.node_count() == smoothed_.node_count(),
              "grouping size mismatch");
  reference_ = cliques;
  last_aggregate_.clear();
  macro_change_.reset();
}

}  // namespace sorn
