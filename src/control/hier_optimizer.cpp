#include "control/hier_optimizer.h"

#include "traffic/patterns.h"
#include "util/assert.h"

namespace sorn {

PermutedDemandView::PermutedDemandView(
    const DemandModel& base, const std::vector<NodeId>& position_of_node)
    : base_(&base) {
  const NodeId n = base.node_count();
  SORN_ASSERT(position_of_node.size() == static_cast<std::size_t>(n),
              "permutation size mismatch");
  node_at_.assign(static_cast<std::size_t>(n), kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId pos = position_of_node[static_cast<std::size_t>(v)];
    SORN_ASSERT(pos >= 0 && pos < n &&
                    node_at_[static_cast<std::size_t>(pos)] == kNoNode,
                "position_of_node must be a permutation");
    node_at_[static_cast<std::size_t>(pos)] = v;
  }
}

std::pair<NodeId, NodeId> PermutedDemandView::sample_pair(Rng&) const {
  SORN_ASSERT(false, "sampling through a permutation view is unsupported");
  return {0, 0};
}

NodeId PermutedDemandView::sample_dst(NodeId, Rng&) const {
  SORN_ASSERT(false, "sampling through a permutation view is unsupported");
  return 0;
}

std::unique_ptr<DemandModel> PermutedDemandView::clone() const {
  return std::unique_ptr<PermutedDemandView>(new PermutedDemandView(*this));
}

TrafficMatrix permute_matrix(const DemandModel& tm,
                             const std::vector<NodeId>& position_of_node) {
  const NodeId n = tm.node_count();
  SORN_ASSERT(position_of_node.size() == static_cast<std::size_t>(n),
              "permutation size mismatch");
  TrafficMatrix out(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = 0; j < n; ++j)
      if (i != j)
        out.set(position_of_node[static_cast<std::size_t>(i)],
                position_of_node[static_cast<std::size_t>(j)], tm.at(i, j));
  return out;
}

HierOptimizer::HierOptimizer(Options options)
    : options_(options), clusterer_(options.clusterer) {}

HierPlan HierOptimizer::plan(const DemandModel& estimate) const {
  const NodeId n = estimate.node_count();
  const CliqueId nc = options_.clusters;
  const CliqueId p = options_.pods_per_cluster;
  SORN_ASSERT(nc >= 1 && p >= 1 && n % (nc * p) == 0,
              "nodes must divide evenly into clusters and pods");
  const NodeId cluster_size = n / nc;
  const NodeId pod_size = cluster_size / p;

  // Level 1: clusters.
  const CliqueAssignment cluster_assignment = clusterer_.cluster(estimate, nc);

  HierPlan plan;
  plan.clusters = nc;
  plan.pods_per_cluster = p;
  plan.position_of_node.assign(static_cast<std::size_t>(n), kNoNode);

  // Level 2: pods within each cluster, on the cluster's sub-matrix.
  for (CliqueId c = 0; c < nc; ++c) {
    const std::vector<NodeId>& members = cluster_assignment.members(c);
    TrafficMatrix sub(cluster_size);
    for (NodeId a = 0; a < cluster_size; ++a)
      for (NodeId b = 0; b < cluster_size; ++b)
        if (a != b)
          sub.set(a, b,
                  estimate.at(members[static_cast<std::size_t>(a)],
                              members[static_cast<std::size_t>(b)]));
    const CliqueAssignment pods = clusterer_.cluster(sub, p);
    // Positions: cluster-major, pod-major, stable within a pod.
    std::vector<NodeId> next_slot_in_pod(static_cast<std::size_t>(p), 0);
    for (NodeId a = 0; a < cluster_size; ++a) {
      const CliqueId pod = pods.clique_of(a);
      const NodeId pos = c * cluster_size + pod * pod_size +
                         next_slot_in_pod[static_cast<std::size_t>(pod)]++;
      plan.position_of_node[static_cast<std::size_t>(
          members[static_cast<std::size_t>(a)])] = pos;
    }
  }

  // Locality split and shares under the recovered hierarchy, read through
  // a zero-copy permutation view (same values in the same fold order as
  // the dense materialization it replaces).
  const PermutedDemandView in_position(estimate, plan.position_of_node);
  const Hierarchy h = plan.hierarchy(n);
  const HierLocality loc = patterns::hier_locality(h, in_position);
  plan.x1 = loc.pod;
  plan.x2 = loc.cluster;
  plan.shares =
      analysis::hier_optimal_shares(plan.x1, plan.x2, options_.share_scale);
  plan.predicted_throughput = analysis::hier_throughput(plan.x1, plan.x2);
  return plan;
}

}  // namespace sorn
