#include "obs/timeseries.h"

#include <cstdio>

#include "util/assert.h"

namespace sorn {

TimeSeriesSampler::TimeSeriesSampler(Slot sample_every)
    : every_(sample_every) {
  SORN_ASSERT(sample_every >= 1, "sampling interval must be at least 1 slot");
}

void TimeSeriesSampler::record(Slot slot, std::uint64_t injected_total,
                               std::uint64_t delivered_total,
                               std::uint64_t dropped_total,
                               std::uint64_t forwarded_total,
                               std::uint64_t queued_cells,
                               std::uint64_t max_voq_depth,
                               std::uint64_t open_flows) {
  SlotSample s;
  s.slot = slot;
  s.injected = injected_total - last_injected_;
  s.delivered = delivered_total - last_delivered_;
  s.dropped = dropped_total - last_dropped_;
  s.forwarded = forwarded_total - last_forwarded_;
  s.queued_cells = queued_cells;
  s.max_voq_depth = max_voq_depth;
  s.open_flows = open_flows;
  samples_.push_back(s);
  last_injected_ = injected_total;
  last_delivered_ = delivered_total;
  last_dropped_ = dropped_total;
  last_forwarded_ = forwarded_total;
}

const char* TimeSeriesSampler::csv_header() {
  return "slot,injected,delivered,dropped,forwarded,queued_cells,"
         "max_voq_depth,open_flows";
}

std::string TimeSeriesSampler::to_csv() const {
  std::string out = csv_header();
  out += '\n';
  char buf[192];
  for (const SlotSample& s : samples_) {
    std::snprintf(buf, sizeof(buf), "%lld,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
                  static_cast<long long>(s.slot),
                  static_cast<unsigned long long>(s.injected),
                  static_cast<unsigned long long>(s.delivered),
                  static_cast<unsigned long long>(s.dropped),
                  static_cast<unsigned long long>(s.forwarded),
                  static_cast<unsigned long long>(s.queued_cells),
                  static_cast<unsigned long long>(s.max_voq_depth),
                  static_cast<unsigned long long>(s.open_flows));
    out += buf;
  }
  return out;
}

void TimeSeriesSampler::clear() {
  samples_.clear();
  last_injected_ = last_delivered_ = last_dropped_ = last_forwarded_ = 0;
}

}  // namespace sorn
