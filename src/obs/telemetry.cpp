#include "obs/telemetry.h"

namespace sorn {

Telemetry::Telemetry(TelemetryOptions options) {
  if (options.sample_every >= 1)
    sampler_.emplace(options.sample_every);
  c_flows_injected_ = registry_.counter("sim.flows_injected");
  c_cells_dropped_ = registry_.counter("sim.cells_dropped");
  c_reconfigures_ = registry_.counter("sim.reconfigures");
  c_failures_ = registry_.counter("sim.failures");
  c_retransmits_ = registry_.counter("sim.retransmits");
  c_gray_drops_ = registry_.counter("sim.gray_drops");
  c_ecn_marks_ = registry_.counter("sim.ecn_marks");
}

}  // namespace sorn
