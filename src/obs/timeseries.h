// Per-slot time-series sampling with decimation.
//
// The simulator exposes cumulative counters (SimMetrics) and instantaneous
// gauges (VOQ occupancy); the sampler turns them into a bounded trajectory
// by recording every k-th slot and differencing the cumulative counters
// between consecutive samples. With k = 1 the deltas are exact per-slot
// rates; with k > 1 each row covers the k slots since the previous row, so
// million-slot runs stay at a few thousand rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace sorn {

struct SlotSample {
  Slot slot = 0;
  // Deltas of the cumulative counters since the previous sample (or since
  // zero for the first sample).
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t forwarded = 0;
  // Gauges at the sample instant.
  std::uint64_t queued_cells = 0;
  std::uint64_t max_voq_depth = 0;
  std::uint64_t open_flows = 0;
};

class TimeSeriesSampler {
 public:
  // sample_every = k records slots 0, k, 2k, ... (k >= 1).
  explicit TimeSeriesSampler(Slot sample_every = 1);

  Slot sample_every() const { return every_; }
  bool due(Slot slot) const { return slot % every_ == 0; }

  // Record one sample. The counter arguments are cumulative; the sampler
  // stores deltas against the previous record() call.
  void record(Slot slot, std::uint64_t injected_total,
              std::uint64_t delivered_total, std::uint64_t dropped_total,
              std::uint64_t forwarded_total, std::uint64_t queued_cells,
              std::uint64_t max_voq_depth, std::uint64_t open_flows);

  const std::vector<SlotSample>& samples() const { return samples_; }

  // Estimated bytes held by the sample buffer (profiler gauge input).
  std::uint64_t memory_bytes() const {
    return samples_.capacity() * sizeof(SlotSample);
  }

  // CSV rendering: header line then one row per sample.
  static const char* csv_header();
  std::string to_csv() const;

  void clear();

 private:
  Slot every_;
  std::vector<SlotSample> samples_;
  std::uint64_t last_injected_ = 0;
  std::uint64_t last_delivered_ = 0;
  std::uint64_t last_dropped_ = 0;
  std::uint64_t last_forwarded_ = 0;
};

}  // namespace sorn
