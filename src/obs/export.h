// Whole-run exporters: aggregates, percentiles, histograms, time series.
//
// JSON output is built with obs/json.h and is byte-deterministic for a
// given run (keys in fixed order, per-class distributions sorted by
// class id); the CSV time series comes straight from the sampler. Both
// are meant for downstream tooling — BENCH_*.json trajectories, plotting
// scripts — not for human eyes, which keep the ASCII tables.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "obs/telemetry.h"
#include "sim/metrics.h"
#include "sim/transport_hook.h"

namespace sorn {

struct ExportOptions {
  // When nodes > 0 the summary includes delivered_per_slot (throughput r).
  NodeId nodes = 0;
  int lanes = 1;
  // Bins of the cell-latency histogram (0 disables it).
  std::size_t latency_histogram_bins = 20;
  // When non-null the document gains a "transport" block (window/ack
  // counters + cwnd stats) — set by runs with a closed-loop transport.
  const TransportStats* transport = nullptr;
};

// Append helpers, usable to embed the same blocks in other documents.
void json_running_stats(JsonWriter& w, const RunningStats& s);
void json_percentiles(JsonWriter& w, const Percentiles& p);
void json_histogram(JsonWriter& w, const Histogram& h);

// The full run as one JSON document: counters, throughput, cell-latency
// percentiles + histogram, FCT percentiles (overall and per class),
// queue-occupancy stats, plus — when `telemetry` is non-null — the
// registry counters/gauges and the sampled time series.
std::string run_to_json(const SimMetrics& metrics, const Telemetry* telemetry,
                        const ExportOptions& options = {});

// The sampled time series as CSV (header + one row per sample).
std::string timeseries_to_csv(const TimeSeriesSampler& sampler);

// Write `content` to `path`; false (with no partial file guarantee) on
// open failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace sorn
