#include "obs/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace sorn {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : fields_)
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::integer(std::int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = static_cast<double>(v);
  j.int_ = v;
  j.has_int_ = true;
  return j;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.items_ = std::move(items);
  return j;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> f) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.fields_ = std::move(f);
  return j;
}

namespace {

// Recursive-descent parser over a string_view with line/column tracking
// for error messages.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse_document(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool parse_value(JsonValue* out, int depth = 0) {
    if (depth > 64) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue::string(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        *out = JsonValue::boolean(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = JsonValue::boolean(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        *out = JsonValue::null();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> fields;
    skip_ws();
    if (peek('}')) {
      *out = JsonValue::object(std::move(fields));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      fields.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek(',')) continue;
      if (peek('}')) break;
      return fail("expected ',' or '}' in object");
    }
    *out = JsonValue::object(std::move(fields));
    return true;
  }

  bool parse_array(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (peek(']')) {
      *out = JsonValue::array(std::move(items));
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      items.push_back(std::move(v));
      skip_ws();
      if (peek(',')) continue;
      if (peek(']')) break;
      return fail("expected ',' or ']' in array");
    }
    *out = JsonValue::array(std::move(items));
    return true;
  }

  bool parse_string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return fail("expected string");
    ++pos_;
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(s);
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed for config files; a lone surrogate encodes as-is).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      s += c;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      return fail("expected a value");
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end != nullptr && *end == '\0') {
        *out = JsonValue::integer(v);
        return true;
      }
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    *out = JsonValue::number(d);
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("expected a value");
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (peek(c)) return true;
    std::string msg = "expected '";
    msg += c;
    msg += '\'';
    return fail(msg.c_str());
  }

  bool fail(const char* msg) {
    if (error_ != nullptr) {
      std::size_t line = 1;
      std::size_t col = 1;
      for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      *error_ = "JSON parse error at line " + std::to_string(line) +
                ", column " + std::to_string(col) + ": " + msg;
    }
    return false;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  JsonValue v;
  Parser p(text, error);
  if (!p.parse_document(&v)) return false;
  *out = std::move(v);
  return true;
}

}  // namespace sorn
