// Minimal deterministic JSON construction for telemetry export.
//
// Hand-rolled on purpose: no third-party dependency, and byte-stable
// output — keys appear in emission order, doubles go through one
// round-trip format ("%.17g", non-finite -> null) — so two runs with the
// same seed and config produce byte-identical files. The determinism
// regression test (tests/obs/determinism_test.cpp) locks this in.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sorn {

// Append `s` to `out` as a quoted JSON string literal, escaping quotes,
// backslashes and control characters.
void json_escape(std::string& out, std::string_view s);

// Round-trip double formatting; NaN/inf become "null" (JSON has no
// non-finite numbers).
std::string json_double(double v);

// Incremental writer for nested objects/arrays. Commas and the
// first-element state are tracked per nesting level; the caller supplies
// structure in the order it should appear.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(const std::string& s) {
    return value(std::string_view(s));
  }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::int32_t v) {
    return value(static_cast<std::int64_t>(v));
  }
  JsonWriter& value(bool v);

  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void element();  // comma bookkeeping before a value or key

  std::string out_;
  std::vector<bool> first_;  // per nesting level: next element is first
  bool pending_key_ = false;
};

}  // namespace sorn
