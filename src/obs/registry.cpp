#include "obs/registry.h"

namespace sorn {

Counter* CounterRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return &it->second;
  return &counters_.emplace(std::string(name), Counter()).first->second;
}

Gauge* CounterRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return &it->second;
  return &gauges_.emplace(std::string(name), Gauge()).first->second;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::counters()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

std::vector<std::pair<std::string, double>> CounterRegistry::gauges() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.value());
  return out;
}

void CounterRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
}

}  // namespace sorn
