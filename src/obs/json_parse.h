// Minimal JSON parser, the read-side counterpart of obs/json.h.
//
// Hand-rolled for the same reasons the writer is: no third-party
// dependency, and a small surface tailored to what the scenario layer
// needs — parse a config document into a tree of JsonValue nodes and look
// fields up by name. Numbers are kept as doubles (plus an exact int64
// when the literal was integral), objects preserve insertion order so
// error messages and round-trip diagnostics stay stable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sorn {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return number_; }
  // The integer value when the literal had no fraction/exponent; falls
  // back to a cast of the double otherwise.
  std::int64_t as_int() const {
    return has_int_ ? int_ : static_cast<std::int64_t>(number_);
  }
  bool is_integer() const { return has_int_; }
  const std::string& as_string() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& fields() const {
    return fields_;
  }
  // Object member by key; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  // ---- construction (parser + tests) ----
  static JsonValue null();
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue integer(std::int64_t v);
  static JsonValue string(std::string v);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> f);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  bool has_int_ = false;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

// Parse one JSON document. On success returns true and fills *out; on
// failure returns false and *error names the position and problem.
// Trailing non-whitespace after the document is an error.
bool json_parse(std::string_view text, JsonValue* out, std::string* error);

}  // namespace sorn
