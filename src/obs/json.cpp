#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace sorn {

void json_escape(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonWriter::element() {
  if (!first_.empty()) {
    if (pending_key_) {
      pending_key_ = false;
      return;  // the key already placed the comma
    }
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  element();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  element();
  json_escape(out_, k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  element();
  json_escape(out_, s);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element();
  out_ += json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace sorn
