#include "obs/prof/phase_profiler.h"

#include <chrono>

namespace sorn {

const char* prof_phase_name(ProfPhase phase) {
  switch (phase) {
    case ProfPhase::kScheduleAdvance:
      return "schedule_advance";
    case ProfPhase::kLaneSweep:
      return "lane_sweep";
    case ProfPhase::kMergeReplay:
      return "merge_replay";
    case ProfPhase::kVoqSettle:
      return "voq_settle";
    case ProfPhase::kRetransmit:
      return "retransmit";
    case ProfPhase::kControlTick:
      return "control_tick";
    case ProfPhase::kFaultTick:
      return "fault_tick";
    case ProfPhase::kSlotHook:
      return "slot_hook";
    case ProfPhase::kTelemetryFlush:
      return "telemetry_flush";
  }
  return "unknown";
}

void PhaseProfiler::record(ProfPhase phase, std::uint64_t ns) {
  const auto i = static_cast<std::size_t>(phase);
  cur_ns_[i] += ns;
  ++cur_calls_[i];
  ++stats_[i].calls;
  stats_[i].total_ns += ns;
}

void PhaseProfiler::end_slot() {
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    if (cur_calls_[i] == 0) continue;
    ++stats_[i].active_slots;
    stats_[i].slot_ns.add(static_cast<double>(cur_ns_[i]));
    cur_ns_[i] = 0;
    cur_calls_[i] = 0;
  }
  ++slots_;
}

std::uint64_t PhaseProfiler::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace sorn
