// Slot-phase wall-clock profiling for the slot engine.
//
// The simulator's step() decomposes into a small fixed set of phases
// (schedule advance, lane sweep, merge/replay, VOQ settle, ...). The
// PhaseProfiler accumulates scoped monotonic-clock intervals per phase
// into the *current slot*, and end_slot() folds the slot's per-phase sums
// into per-phase totals and a per-slot distribution (Percentiles), so a
// run reports both "where did the time go overall" and "how does a slot's
// phase breakdown vary".
//
// Timing is inclusive: a scope opened inside another scope counts toward
// both phases. The instrumentation sites keep the engine phases disjoint;
// nesting only arises when a caller wraps a composite region (e.g. a slot
// hook that itself ticks the fault injector).
//
// Profiling never touches simulation state — no RNG draws, no metrics —
// so attaching a profiler cannot perturb the byte-identical determinism
// contract of the sim artifacts. The profile *output* is wall-clock data
// and sits explicitly outside that contract (see DESIGN.md §10).
#pragma once

#include <array>
#include <cstdint>

#include "util/stats.h"

namespace sorn {

// Phases of one simulated slot, in fixed export order. Keep
// prof_phase_name() and kProfPhaseCount in sync when extending.
enum class ProfPhase : int {
  kScheduleAdvance = 0,  // matching lookup per lane
  kLaneSweep,            // node sweep (sequential) or sharded stage phase
  kMergeReplay,          // merge of staged shard events (parallel engine)
  kVoqSettle,            // settling the global queued-cell total
  kRetransmit,           // end-host stall scan + re-admission
  kControlTick,          // control-plane tick (ControlPlane::tick)
  kFaultTick,            // fault-injector timeline tick
  kSlotHook,             // scenario/user slot hook body
  kTelemetryFlush,       // telemetry sampling at the end of step()
};

inline constexpr int kProfPhaseCount = 9;

// Stable lowercase identifier used in profile.json.
const char* prof_phase_name(ProfPhase phase);

class PhaseProfiler {
 public:
  struct PhaseStats {
    std::uint64_t calls = 0;         // recorded scopes, across all slots
    std::uint64_t total_ns = 0;      // sum over all recorded scopes
    std::uint64_t active_slots = 0;  // slots in which the phase ran
    // One sample per *active* slot: the slot's summed nanoseconds in this
    // phase. Phases that run rarely (retransmit every k slots) are not
    // diluted by zero samples from the slots they skip.
    Percentiles slot_ns;
  };

  // Accumulate one interval into the current slot. Deterministic entry
  // point — tests call it directly instead of going through the clock.
  void record(ProfPhase phase, std::uint64_t ns);

  // Close the current slot: fold its per-phase sums into the aggregates.
  void end_slot();

  std::uint64_t slots() const { return slots_; }
  const PhaseStats& stats(ProfPhase phase) const {
    return stats_[static_cast<std::size_t>(phase)];
  }

  // Monotonic wall-clock in nanoseconds (std::chrono::steady_clock).
  static std::uint64_t now_ns();

 private:
  std::array<PhaseStats, kProfPhaseCount> stats_{};
  std::array<std::uint64_t, kProfPhaseCount> cur_ns_{};
  std::array<std::uint32_t, kProfPhaseCount> cur_calls_{};
  std::uint64_t slots_ = 0;
};

// RAII scope: measures from construction to destruction and records into
// `profiler` under `phase`. A null profiler makes the scope a no-op — the
// instrumentation sites pay one predictable null check when detached,
// mirroring the Telemetry pattern.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, ProfPhase phase)
      : profiler_(profiler),
        phase_(phase),
        start_ns_(profiler != nullptr ? PhaseProfiler::now_ns() : 0) {}
  ~ScopedPhase() {
    if (profiler_ != nullptr)
      profiler_->record(phase_, PhaseProfiler::now_ns() - start_ns_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  ProfPhase phase_;
  std::uint64_t start_ns_;
};

}  // namespace sorn
