// Rendering a Profiler into the profile.json artifact.
//
// The document layout (schema "sorn-profile-v1") is fixed — phases in
// enum order, memory gauges sorted by name — but the *values* are wall
// clock and therefore nondeterministic: profile.json is explicitly
// outside the byte-identical-artifact contract the sim outputs obey.
// ci/check_bench.py --schema validates the shape.
#pragma once

#include <string>

namespace sorn {

class Profiler;

std::string profile_to_json(const Profiler& profiler);

}  // namespace sorn
