#include "obs/prof/memory_accountant.h"

#include <algorithm>

#include "util/assert.h"
#include "util/rusage.h"

namespace sorn {

MemoryAccountant::Entry& MemoryAccountant::entry(const std::string& name) {
  for (Entry& e : entries_)
    if (e.name == name) return e;
  entries_.push_back(Entry{name, Provider{}, 0, 0});
  return entries_.back();
}

void MemoryAccountant::register_provider(std::string name,
                                         Provider provider) {
  Entry& e = entry(name);
  e.provider = std::move(provider);
}

void MemoryAccountant::set_bytes(const std::string& name,
                                 std::uint64_t bytes) {
  Entry& e = entry(name);
  e.bytes = bytes;
  e.peak_bytes = std::max(e.peak_bytes, bytes);
}

void MemoryAccountant::set_sample_every(Slot every) {
  SORN_ASSERT(every >= 1, "memory sample cadence must be >= 1");
  every_ = every;
}

void MemoryAccountant::sample() {
  for (Entry& e : entries_) {
    if (!e.provider) continue;
    e.bytes = e.provider();
    e.peak_bytes = std::max(e.peak_bytes, e.bytes);
  }
  // Qualified: the util/rusage probe, not this class's accessor.
  rss_peak_bytes_ = std::max(rss_peak_bytes_, ::sorn::peak_rss_bytes());
  ++samples_;
}

std::vector<MemoryAccountant::Gauge> MemoryAccountant::snapshot() const {
  std::vector<Gauge> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_)
    out.push_back(Gauge{e.name, e.bytes, e.peak_bytes});
  std::sort(out.begin(), out.end(),
            [](const Gauge& a, const Gauge& b) { return a.name < b.name; });
  return out;
}

}  // namespace sorn
