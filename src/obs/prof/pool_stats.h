// Worker-pool utilization counters, as plain data.
//
// Defined here (not in sim/parallel.h) so the profiler export can consume
// pool statistics without the obs layer depending on the simulator: the
// ThreadPool fills a PoolUtilization snapshot, the engine hands it to the
// Profiler, and profile_to_json renders it.
#pragma once

#include <cstdint>
#include <vector>

namespace sorn {

struct PoolWorkerStats {
  std::uint64_t busy_ns = 0;  // wall time spent inside shard bodies
  std::uint64_t shards = 0;   // shard bodies this worker executed
};

struct PoolUtilization {
  int threads = 1;
  std::uint64_t batches = 0;        // dispatches while profiling was on
  std::uint64_t shards = 0;         // total shard executions (all workers)
  std::uint64_t owner_wait_ns = 0;  // coordinating thread inside wait()
  // Wall-clock span from enable_profiling(true) to the snapshot; per-worker
  // idle time is window_ns - busy_ns (computed at export, clamped at 0).
  std::uint64_t window_ns = 0;
  std::vector<PoolWorkerStats> workers;  // one entry per worker thread
};

}  // namespace sorn
