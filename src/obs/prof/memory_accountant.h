// Per-subsystem byte gauges plus periodic peak-RSS sampling.
//
// PR 5 answered "what dominates memory at N = 4096" by hand (stored
// matchings, by a wide margin). The MemoryAccountant turns that into a
// standing report: subsystems register named byte providers (VOQ storage,
// stored matchings, in-flight flow records, retransmit state, trace
// buffers), the engine ticks the accountant every k slots, and each
// sample refreshes every gauge plus the process peak RSS, keeping a
// per-gauge high-water mark.
//
// Providers only *read* their subsystem (O(nodes) at worst for the VOQ
// estimate), so sampling cannot perturb simulation results.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/time.h"

namespace sorn {

class MemoryAccountant {
 public:
  using Provider = std::function<std::uint64_t()>;

  struct Gauge {
    std::string name;
    std::uint64_t bytes = 0;       // value at the last sample
    std::uint64_t peak_bytes = 0;  // high-water mark across samples
  };

  // Register (or replace) a provider evaluated on every sample().
  void register_provider(std::string name, Provider provider);

  // Set a gauge directly (for one-shot estimates without a provider).
  // Creates the gauge on first use; advances its peak.
  void set_bytes(const std::string& name, std::uint64_t bytes);

  // Sampling cadence for tick(); every >= 1 (default 1024 slots).
  void set_sample_every(Slot every);
  Slot sample_every() const { return every_; }

  // Engine hook: sample when `slot` is on the cadence. One modulo when
  // profiling is attached; nothing at all when detached (the caller's
  // null check).
  void tick(Slot slot) {
    if (slot % every_ == 0) sample();
  }

  // Evaluate every provider now, refresh peaks and the RSS high-water
  // mark. Also called once at end of run so final state is captured.
  void sample();

  std::uint64_t samples() const { return samples_; }
  // Peak RSS (bytes) observed across samples; 0 before the first sample.
  std::uint64_t peak_rss_bytes() const { return rss_peak_bytes_; }

  // All gauges, sorted by name (deterministic export order).
  std::vector<Gauge> snapshot() const;

 private:
  struct Entry {
    std::string name;
    Provider provider;  // may be empty (set_bytes-only gauge)
    std::uint64_t bytes = 0;
    std::uint64_t peak_bytes = 0;
  };

  Entry& entry(const std::string& name);

  std::vector<Entry> entries_;
  Slot every_ = 1024;
  std::uint64_t samples_ = 0;
  std::uint64_t rss_peak_bytes_ = 0;
};

}  // namespace sorn
