// The profiling facade: phase timers + memory gauges + pool utilization.
//
// Mirrors the Telemetry pattern (obs/telemetry.h): a borrowed Profiler*
// is attached to the engine (SlottedNetwork::set_profiler) and every
// instrumentation site is one predictable null check when detached —
// bench_obs_overhead gates the detached overhead at <= 2%.
//
// The profiler reads clocks and subsystem sizes but never touches RNG,
// metrics, or queues, so sim artifacts (metrics JSON, trace JSONL,
// time-series CSV) are byte-identical with profiling on or off. The
// profile.json it produces is wall-clock data and sits outside that
// determinism contract by design.
#pragma once

#include <utility>

#include "obs/prof/memory_accountant.h"
#include "obs/prof/phase_profiler.h"
#include "obs/prof/pool_stats.h"

namespace sorn {

class Profiler {
 public:
  PhaseProfiler& phases() { return phases_; }
  const PhaseProfiler& phases() const { return phases_; }

  MemoryAccountant& memory() { return memory_; }
  const MemoryAccountant& memory() const { return memory_; }

  // Pool utilization is snapshotted by whoever owns the engine (the pool's
  // counters live in sim/parallel.h; the engine copies them over at the
  // end of a profiled run). Absent for single-threaded runs.
  void set_pool_utilization(PoolUtilization u) {
    pool_ = std::move(u);
    has_pool_ = true;
  }
  bool has_pool_utilization() const { return has_pool_; }
  const PoolUtilization& pool_utilization() const { return pool_; }

 private:
  PhaseProfiler phases_;
  MemoryAccountant memory_;
  PoolUtilization pool_;
  bool has_pool_ = false;
};

}  // namespace sorn
