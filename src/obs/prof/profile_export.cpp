#include "obs/prof/profile_export.h"

#include "obs/export.h"
#include "obs/json.h"
#include "obs/prof/profiler.h"

namespace sorn {

std::string profile_to_json(const Profiler& profiler) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "sorn-profile-v1");

  const PhaseProfiler& phases = profiler.phases();
  w.field("slots", phases.slots());
  w.key("phases").begin_array();
  for (int i = 0; i < kProfPhaseCount; ++i) {
    const auto phase = static_cast<ProfPhase>(i);
    const PhaseProfiler::PhaseStats& s = phases.stats(phase);
    w.begin_object();
    w.field("phase", prof_phase_name(phase));
    w.field("calls", s.calls);
    w.field("total_ns", s.total_ns);
    w.field("active_slots", s.active_slots);
    w.key("slot_ns");
    json_percentiles(w, s.slot_ns);
    w.end_object();
  }
  w.end_array();

  w.key("pool").begin_object();
  if (profiler.has_pool_utilization()) {
    const PoolUtilization& pool = profiler.pool_utilization();
    w.field("threads", pool.threads);
    w.field("batches", pool.batches);
    w.field("shards", pool.shards);
    w.field("owner_wait_ns", pool.owner_wait_ns);
    w.field("window_ns", pool.window_ns);
    w.key("workers").begin_array();
    for (std::size_t i = 0; i < pool.workers.size(); ++i) {
      const PoolWorkerStats& ws = pool.workers[i];
      w.begin_object();
      w.field("worker", static_cast<std::uint64_t>(i));
      w.field("busy_ns", ws.busy_ns);
      const std::uint64_t idle =
          pool.window_ns > ws.busy_ns ? pool.window_ns - ws.busy_ns : 0;
      w.field("idle_ns", idle);
      w.field("shards", ws.shards);
      w.end_object();
    }
    w.end_array();
  } else {
    // Single-threaded engine: no pool, the sweep runs on the caller.
    w.field("threads", std::int64_t{1});
    w.field("batches", std::uint64_t{0});
    w.field("shards", std::uint64_t{0});
    w.field("owner_wait_ns", std::uint64_t{0});
    w.field("window_ns", std::uint64_t{0});
    w.key("workers").begin_array().end_array();
  }
  w.end_object();

  const MemoryAccountant& memory = profiler.memory();
  w.key("memory").begin_object();
  w.field("samples", memory.samples());
  w.field("peak_rss_bytes", memory.peak_rss_bytes());
  w.key("gauges").begin_array();
  for (const MemoryAccountant::Gauge& g : memory.snapshot()) {
    w.begin_object();
    w.field("name", g.name);
    w.field("bytes", g.bytes);
    w.field("peak_bytes", g.peak_bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
  return w.take();
}

}  // namespace sorn
