#include "obs/export.h"

#include <cstdio>

namespace sorn {

void json_running_stats(JsonWriter& w, const RunningStats& s) {
  w.begin_object()
      .field("count", static_cast<std::uint64_t>(s.count()))
      .field("mean", s.mean())
      .field("stddev", s.stddev())
      .field("min", s.min())
      .field("max", s.max())
      .end_object();
}

void json_percentiles(JsonWriter& w, const Percentiles& p) {
  w.begin_object().field("count", static_cast<std::uint64_t>(p.count()));
  w.field("mean", p.mean());
  for (const double q : {0.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    char key[16];
    std::snprintf(key, sizeof(key), "p%g", q);
    w.field(key, p.percentile(q));
  }
  w.end_object();
}

void json_histogram(JsonWriter& w, const Histogram& h) {
  w.begin_object().field("total", h.total());
  w.key("bins").begin_array();
  for (std::size_t i = 0; i < h.bins(); ++i) {
    w.begin_object()
        .field("low", h.bin_low(i))
        .field("count", h.bin_count(i))
        .end_object();
  }
  w.end_array().end_object();
}

namespace {

// Fixed-bin histogram over a sample distribution's [min, max] range;
// empty distributions yield a single empty bin.
Histogram histogram_of(const Percentiles& p, std::size_t bins) {
  const double lo = p.percentile(0.0);
  double hi = p.percentile(100.0);
  if (hi <= lo) hi = lo + 1.0;
  Histogram h(lo, hi, bins);
  for (const double x : p.sorted()) h.add(x);
  return h;
}

}  // namespace

std::string run_to_json(const SimMetrics& metrics, const Telemetry* telemetry,
                        const ExportOptions& options) {
  JsonWriter w;
  w.begin_object();

  w.key("counters").begin_object();
  w.field("slots_run", metrics.slots_run())
      .field("injected_cells", metrics.injected_cells())
      .field("delivered_cells", metrics.delivered_cells())
      .field("forwarded_cells", metrics.forwarded_cells())
      .field("dropped_cells", metrics.dropped_cells())
      .field("gray_dropped_cells", metrics.gray_dropped_cells())
      .field("completed_flows", metrics.completed_flows())
      .field("open_flows", metrics.open_flows())
      .field("retransmitted_cells", metrics.retransmitted_cells())
      .field("retransmit_events", metrics.retransmit_events())
      .field("duplicate_cells", metrics.duplicate_cells())
      .field("stalled_flow_slots", metrics.stalled_flow_slots())
      .field("recovered_flows", metrics.recovered_flows())
      .field("mean_recovery_slots", metrics.mean_recovery_slots())
      .field("ecn_marked_cells", metrics.ecn_marked_cells())
      .field("mean_hops", metrics.mean_hops());
  if (options.nodes > 0) {
    w.field("delivered_per_slot",
            metrics.delivered_per_slot(options.nodes, options.lanes));
  }
  w.end_object();

  w.key("cell_latency_ps");
  json_percentiles(w, metrics.cell_latency_ps());
  if (options.latency_histogram_bins > 0 &&
      metrics.cell_latency_ps().count() > 0) {
    w.key("cell_latency_histogram");
    json_histogram(w, histogram_of(metrics.cell_latency_ps(),
                                   options.latency_histogram_bins));
  }

  w.key("fct_ps");
  json_percentiles(w, metrics.fct_ps());
  w.key("fct_ps_by_class").begin_object();
  for (const int cls : metrics.flow_classes()) {
    char key[16];
    std::snprintf(key, sizeof(key), "%d", cls);
    w.key(key);
    json_percentiles(w, metrics.fct_ps_class(cls));
  }
  w.end_object();

  w.key("queue_occupancy");
  json_running_stats(w, metrics.queue_occupancy());

  if (options.transport != nullptr) {
    const TransportStats& t = *options.transport;
    w.key("transport").begin_object();
    w.field("flows_opened", t.flows_opened)
        .field("flows_completed", t.flows_completed)
        .field("cells_sent", t.cells_sent)
        .field("acked_cells", t.acked_cells)
        .field("ecn_acked_cells", t.ecn_acked_cells);
    w.key("cwnd_cells");
    json_running_stats(w, t.cwnd_cells);
    w.end_object();
  }

  if (telemetry != nullptr) {
    w.key("registry").begin_object();
    w.key("counters").begin_object();
    for (const auto& [name, v] : telemetry->registry().counters())
      w.field(name, v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, v] : telemetry->registry().gauges())
      w.field(name, v);
    w.end_object();
    w.end_object();

    if (const TimeSeriesSampler* ts = telemetry->timeseries()) {
      w.key("timeseries").begin_object();
      w.field("sample_every", static_cast<std::int64_t>(ts->sample_every()));
      w.key("columns").begin_array();
      for (const char* col :
           {"slot", "injected", "delivered", "dropped", "forwarded",
            "queued_cells", "max_voq_depth", "open_flows"})
        w.value(col);
      w.end_array();
      w.key("rows").begin_array();
      for (const SlotSample& s : ts->samples()) {
        w.begin_array()
            .value(static_cast<std::int64_t>(s.slot))
            .value(s.injected)
            .value(s.delivered)
            .value(s.dropped)
            .value(s.forwarded)
            .value(s.queued_cells)
            .value(s.max_voq_depth)
            .value(s.open_flows)
            .end_array();
      }
      w.end_array().end_object();
    }
  }

  w.end_object();
  return w.take();
}

std::string timeseries_to_csv(const TimeSeriesSampler& sampler) {
  return sampler.to_csv();
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace sorn
