// Named counter/gauge registry.
//
// Hot paths obtain a Counter*/Gauge* once at setup and bump it with a
// single add on a stable address — std::map node storage guarantees
// pointers survive later registrations. The registry itself is only
// walked at export time; iteration is in name order, so exports are
// deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sorn {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

class CounterRegistry {
 public:
  // Returns the counter/gauge registered under `name`, creating it on
  // first use. The pointer stays valid for the registry's lifetime.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);

  // Name-sorted snapshots for export.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;

  std::size_t counter_count() const { return counters_.size(); }

  // Zero every counter (gauges keep their last value).
  void reset();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
};

}  // namespace sorn
