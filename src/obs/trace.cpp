#include "obs/trace.h"

#include "obs/json.h"

namespace sorn {

FileTraceSink::FileTraceSink(const std::string& path)
    : f_(std::fopen(path.c_str(), "w")) {}

FileTraceSink::~FileTraceSink() {
  if (f_ != nullptr) std::fclose(f_);
}

void FileTraceSink::write(std::string_view record) {
  if (f_ == nullptr) return;
  std::fwrite(record.data(), 1, record.size(), f_);
  std::fputc('\n', f_);
}

namespace {

JsonWriter event(std::string_view ev, Slot slot) {
  JsonWriter w;
  w.begin_object().field("ev", ev).field("slot", static_cast<std::int64_t>(slot));
  return w;
}

}  // namespace

void Tracer::flow_inject(Slot slot, std::uint64_t flow, NodeId src, NodeId dst,
                         std::uint64_t bytes, int flow_class) {
  if (!enabled()) return;
  JsonWriter w = event("flow_inject", slot);
  w.field("flow", flow)
      .field("src", src)
      .field("dst", dst)
      .field("bytes", bytes)
      .field("class", flow_class)
      .end_object();
  sink_->write(w.str());
}

void Tracer::flow_complete(Slot slot, std::uint64_t flow, Picoseconds fct_ps,
                           int flow_class) {
  if (!enabled()) return;
  JsonWriter w = event("flow_complete", slot);
  w.field("flow", flow)
      .field("fct_ps", static_cast<std::int64_t>(fct_ps))
      .field("class", flow_class)
      .end_object();
  sink_->write(w.str());
}

void Tracer::cell_drop(Slot slot, NodeId at, NodeId next_hop,
                       std::uint64_t flow) {
  if (!enabled()) return;
  JsonWriter w = event("cell_drop", slot);
  w.field("at", at).field("next_hop", next_hop).field("flow", flow)
      .end_object();
  sink_->write(w.str());
}

void Tracer::reconfigure(Slot slot) {
  if (!enabled()) return;
  JsonWriter w = event("reconfigure", slot);
  w.end_object();
  sink_->write(w.str());
}

void Tracer::node_fail(Slot slot, NodeId node) {
  if (!enabled()) return;
  JsonWriter w = event("node_fail", slot);
  w.field("node", node).end_object();
  sink_->write(w.str());
}

void Tracer::node_heal(Slot slot, NodeId node) {
  if (!enabled()) return;
  JsonWriter w = event("node_heal", slot);
  w.field("node", node).end_object();
  sink_->write(w.str());
}

void Tracer::circuit_fail(Slot slot, NodeId src, NodeId dst) {
  if (!enabled()) return;
  JsonWriter w = event("circuit_fail", slot);
  w.field("src", src).field("dst", dst).end_object();
  sink_->write(w.str());
}

void Tracer::circuit_heal(Slot slot, NodeId src, NodeId dst) {
  if (!enabled()) return;
  JsonWriter w = event("circuit_heal", slot);
  w.field("src", src).field("dst", dst).end_object();
  sink_->write(w.str());
}

void Tracer::circuit_degrade(Slot slot, NodeId src, NodeId dst, double loss_p,
                             double capacity) {
  if (!enabled()) return;
  JsonWriter w = event("circuit_degrade", slot);
  w.field("src", src)
      .field("dst", dst)
      .field("loss_p", loss_p)
      .field("capacity", capacity)
      .end_object();
  sink_->write(w.str());
}

void Tracer::circuit_restore(Slot slot, NodeId src, NodeId dst) {
  if (!enabled()) return;
  JsonWriter w = event("circuit_restore", slot);
  w.field("src", src).field("dst", dst).end_object();
  sink_->write(w.str());
}

void Tracer::gray_drop(Slot slot, NodeId at, NodeId next_hop,
                       std::uint64_t flow) {
  if (!enabled()) return;
  JsonWriter w = event("gray_drop", slot);
  w.field("at", at).field("next_hop", next_hop).field("flow", flow)
      .end_object();
  sink_->write(w.str());
}

void Tracer::retransmit(Slot slot, std::uint64_t flow, std::uint64_t cells,
                        std::uint32_t attempt) {
  if (!enabled()) return;
  JsonWriter w = event("retransmit", slot);
  w.field("flow", flow)
      .field("cells", cells)
      .field("attempt", static_cast<std::int64_t>(attempt))
      .end_object();
  sink_->write(w.str());
}

void Tracer::replan(Slot slot, std::string_view reason, double macro_change,
                    double locality_estimate, double planned_locality,
                    int cliques, double q, std::uint64_t replans) {
  if (!enabled()) return;
  JsonWriter w = event("replan", slot);
  w.field("reason", reason)
      .field("macro_change", macro_change)
      .field("locality_estimate", locality_estimate)
      .field("planned_locality", planned_locality)
      .field("cliques", cliques)
      .field("q", q)
      .field("replans", replans)
      .end_object();
  sink_->write(w.str());
}

void Tracer::reconfig_staged(Slot slot, Slot due, int cliques, double q,
                             bool weighted) {
  if (!enabled()) return;
  JsonWriter w = event("reconfig_staged", slot);
  w.field("due", static_cast<std::int64_t>(due))
      .field("cliques", cliques)
      .field("q", q)
      .field("weighted", weighted)
      .end_object();
  sink_->write(w.str());
}

void Tracer::reconfig_applied(Slot slot, std::uint64_t swaps_applied) {
  if (!enabled()) return;
  JsonWriter w = event("reconfig_applied", slot);
  w.field("swaps_applied", swaps_applied).end_object();
  sink_->write(w.str());
}

void Tracer::controller_down(Slot slot) {
  if (!enabled()) return;
  JsonWriter w = event("controller_down", slot);
  w.end_object();
  sink_->write(w.str());
}

void Tracer::controller_up(Slot slot) {
  if (!enabled()) return;
  JsonWriter w = event("controller_up", slot);
  w.end_object();
  sink_->write(w.str());
}

void Tracer::safe_mode_enter(Slot slot, std::string_view policy) {
  if (!enabled()) return;
  JsonWriter w = event("safe_mode_enter", slot);
  w.field("policy", policy).end_object();
  sink_->write(w.str());
}

void Tracer::safe_mode_exit(Slot slot) {
  if (!enabled()) return;
  JsonWriter w = event("safe_mode_exit", slot);
  w.end_object();
  sink_->write(w.str());
}

}  // namespace sorn
