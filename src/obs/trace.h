// Structured event tracing (JSONL).
//
// The tracer turns simulator and control-plane events into one-line JSON
// records pushed through a TraceSink. Every record carries {"ev": <type>,
// "slot": <slot>} plus event-specific fields; the full schema is
// documented in README.md ("Telemetry & tracing").
//
// Cost model: every event method first checks enabled(); with no sink
// attached that is a single well-predicted branch and no formatting work,
// so tracing can stay compiled into hot paths (verified by
// bench_obs_overhead).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"
#include "util/types.h"

namespace sorn {

// Receives one complete JSON object per event, without trailing newline;
// the sink chooses framing (FileTraceSink appends '\n' for JSONL).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(std::string_view record) = 0;
};

// Swallows everything. Attach to exercise the formatting path without IO
// (benchmarks), or as an explicit "tracing off" sink.
class NullTraceSink final : public TraceSink {
 public:
  void write(std::string_view) override {}
};

// Buffers records in memory; used by tests to assert on the schema.
class MemoryTraceSink final : public TraceSink {
 public:
  void write(std::string_view record) override {
    lines_.emplace_back(record);
  }
  const std::vector<std::string>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
};

// Appends one line per record to a file (JSONL).
class FileTraceSink final : public TraceSink {
 public:
  explicit FileTraceSink(const std::string& path);
  ~FileTraceSink() override;
  FileTraceSink(const FileTraceSink&) = delete;
  FileTraceSink& operator=(const FileTraceSink&) = delete;

  bool ok() const { return f_ != nullptr; }
  void write(std::string_view record) override;

 private:
  std::FILE* f_ = nullptr;
};

class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  // The sink is borrowed and must outlive the tracer (or be detached).
  void set_sink(TraceSink* sink) { sink_ = sink; }
  bool enabled() const { return sink_ != nullptr; }

  // ---- Simulator events ----
  void flow_inject(Slot slot, std::uint64_t flow, NodeId src, NodeId dst,
                   std::uint64_t bytes, int flow_class);
  void flow_complete(Slot slot, std::uint64_t flow, Picoseconds fct_ps,
                     int flow_class);
  void cell_drop(Slot slot, NodeId at, NodeId next_hop, std::uint64_t flow);
  // A schedule/router swap became visible to the data plane.
  void reconfigure(Slot slot);
  void node_fail(Slot slot, NodeId node);
  void node_heal(Slot slot, NodeId node);
  void circuit_fail(Slot slot, NodeId src, NodeId dst);
  void circuit_heal(Slot slot, NodeId src, NodeId dst);
  // Gray failures: a circuit degraded to per-cell loss `loss_p` and/or
  // slot-capacity `capacity`, a cell lost on such a circuit, and the
  // circuit restored to healthy.
  void circuit_degrade(Slot slot, NodeId src, NodeId dst, double loss_p,
                       double capacity);
  void circuit_restore(Slot slot, NodeId src, NodeId dst);
  void gray_drop(Slot slot, NodeId at, NodeId next_hop, std::uint64_t flow);
  // The stall detector re-admitted `cells` undelivered cells of `flow`
  // (backoff round `attempt`, 1-based).
  void retransmit(Slot slot, std::uint64_t flow, std::uint64_t cells,
                  std::uint32_t attempt);

  // ---- Control-plane events ----
  // A re-plan decision. reason is one of "first_observation", "threshold"
  // (macro_change exceeded the replan threshold) or
  // "locality_degradation" (estimate's locality under the current plan
  // fell below what the plan assumed).
  void replan(Slot slot, std::string_view reason, double macro_change,
              double locality_estimate, double planned_locality, int cliques,
              double q, std::uint64_t replans);
  // A swap was materialized and scheduled for `due` (ReconfigManager).
  void reconfig_staged(Slot slot, Slot due, int cliques, double q,
                       bool weighted);
  // The staged swap was applied to the network.
  void reconfig_applied(Slot slot, std::uint64_t swaps_applied);
  // Controller availability transitions (control/control_faults.h).
  void controller_down(Slot slot);
  void controller_up(Slot slot);
  // Safe-mode transitions (control/safe_mode.h): the data plane fell back
  // to `policy` ("hold" or "vlb") during a controller outage, and later
  // returned to the pre-outage configuration.
  void safe_mode_enter(Slot slot, std::string_view policy);
  void safe_mode_exit(Slot slot);

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace sorn
