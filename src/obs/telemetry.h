// Telemetry facade: one object bundling the counter registry, the event
// tracer and the optional per-slot time-series sampler.
//
// A SlottedNetwork holds a borrowed Telemetry* (set_telemetry); every
// instrumentation site in the simulator is guarded by one null check, so
// the un-instrumented configuration costs a single predictable branch
// (bench_obs_overhead measures this at well under the 2% budget). The
// hook methods below both bump the standard counters and forward to the
// tracer, so attaching a Telemetry with no sink still yields counts.
//
// Threading contract: Telemetry is not thread-safe and does not need to
// be. The parallel slot engine never calls hooks from worker threads —
// shards stage their results in per-shard buffers, and the coordinating
// thread invokes every hook during the merge phase, replaying events in
// the exact order the sequential sweep would have produced them. That is
// what keeps traces and time series byte-identical across thread counts
// (see src/sim/network.cpp, step_lane_parallel).
#pragma once

#include <memory>
#include <optional>

#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace sorn {

struct TelemetryOptions {
  // 0 disables time-series sampling; k >= 1 records every k-th slot.
  Slot sample_every = 0;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {});

  CounterRegistry& registry() { return registry_; }
  const CounterRegistry& registry() const { return registry_; }

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  void set_trace_sink(TraceSink* sink) { tracer_.set_sink(sink); }

  TimeSeriesSampler* timeseries() {
    return sampler_ ? &*sampler_ : nullptr;
  }
  const TimeSeriesSampler* timeseries() const {
    return sampler_ ? &*sampler_ : nullptr;
  }

  // ---- Hooks called by the simulator ----
  // True when this slot should be sampled; the caller only then gathers
  // the (possibly expensive) gauges and calls sample().
  bool sample_due(Slot slot) const {
    return sampler_ && sampler_->due(slot);
  }
  void sample(Slot slot, std::uint64_t injected_total,
              std::uint64_t delivered_total, std::uint64_t dropped_total,
              std::uint64_t forwarded_total, std::uint64_t queued_cells,
              std::uint64_t max_voq_depth, std::uint64_t open_flows) {
    sampler_->record(slot, injected_total, delivered_total, dropped_total,
                     forwarded_total, queued_cells, max_voq_depth, open_flows);
  }

  void on_flow_inject(Slot slot, std::uint64_t flow, NodeId src, NodeId dst,
                      std::uint64_t bytes, int flow_class) {
    c_flows_injected_->inc();
    tracer_.flow_inject(slot, flow, src, dst, bytes, flow_class);
  }
  void on_cell_drop(Slot slot, NodeId at, NodeId next_hop,
                    std::uint64_t flow) {
    c_cells_dropped_->inc();
    tracer_.cell_drop(slot, at, next_hop, flow);
  }
  void on_reconfigure(Slot slot) {
    c_reconfigures_->inc();
    tracer_.reconfigure(slot);
  }
  void on_node_fail(Slot slot, NodeId node) {
    c_failures_->inc();
    tracer_.node_fail(slot, node);
  }
  void on_node_heal(Slot slot, NodeId node) { tracer_.node_heal(slot, node); }
  void on_circuit_fail(Slot slot, NodeId src, NodeId dst) {
    c_failures_->inc();
    tracer_.circuit_fail(slot, src, dst);
  }
  void on_circuit_heal(Slot slot, NodeId src, NodeId dst) {
    tracer_.circuit_heal(slot, src, dst);
  }
  // A circuit entered (or changed) a gray-degraded state: lossy at
  // `loss_p`, and/or serving only a `capacity` fraction of its slots.
  void on_circuit_degrade(Slot slot, NodeId src, NodeId dst, double loss_p,
                          double capacity) {
    c_failures_->inc();
    tracer_.circuit_degrade(slot, src, dst, loss_p, capacity);
  }
  void on_circuit_restore(Slot slot, NodeId src, NodeId dst) {
    tracer_.circuit_restore(slot, src, dst);
  }
  // A cell was lost on a gray (lossy) circuit mid-flight.
  void on_gray_drop(Slot slot, NodeId at, NodeId next_hop,
                    std::uint64_t flow) {
    c_cells_dropped_->inc();
    c_gray_drops_->inc();
    tracer_.gray_drop(slot, at, next_hop, flow);
  }
  // One stall-detector firing: `cells` undelivered cells of `flow` were
  // re-admitted on backoff round `attempt`.
  void on_retransmit(Slot slot, std::uint64_t flow, std::uint64_t cells,
                     std::uint32_t attempt) {
    c_retransmits_->inc();
    tracer_.retransmit(slot, flow, cells, attempt);
  }
  // A cell was ECN-marked at enqueue. Counter only — marking is per-cell
  // and would swamp the event trace.
  void on_ecn_mark() { c_ecn_marks_->inc(); }

 private:
  CounterRegistry registry_;
  Tracer tracer_;
  std::optional<TimeSeriesSampler> sampler_;
  // Standard counters, resolved once so hooks are a single add.
  Counter* c_flows_injected_;
  Counter* c_cells_dropped_;
  Counter* c_reconfigures_;
  Counter* c_failures_;
  Counter* c_retransmits_;
  Counter* c_gray_drops_;
  Counter* c_ecn_marks_;
};

}  // namespace sorn
