// Deterministic fault injection for the slotted simulator.
//
// Two timeline sources, freely combined:
//
//   Scripted — a FaultScript of "<slot> <action> <args>" events parsed
//   from text (sorn_tool --fault-script) or built programmatically;
//   applied when the network clock reaches each event's slot.
//
//   Stochastic — a per-node / per-circuit MTBF/MTTR exponential model:
//   every healthy entity fails at rate 1/MTBF, every failed entity heals
//   at rate 1/MTTR (memoryless). Implemented event-driven on aggregate
//   rates (Gillespie-style): one exponential draw yields the next
//   transition slot, one uniform draw picks the transition, so RNG cost is
//   per fault event, not per slot x entity.
//
// Determinism contract: tick(net) must be called once per slot from the
// coordinating thread, before net.step() — never from inside the parallel
// sweep (asserted). All fault randomness comes from the injector's own
// Rng, so a seeded run produces the identical fault timeline — and hence
// byte-identical metrics/traces — at any --threads setting.
//
// Faults drive SlottedNetwork::fail_*/heal_* and therefore fire the
// existing telemetry events (node_fail, node_heal, circuit_fail,
// circuit_heal). Scripted events that would not change state (failing an
// already-failed node) are skipped silently — the network mutators are
// idempotent.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/network.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/types.h"

namespace sorn {

enum class FaultKind : std::uint8_t {
  kFailNode,
  kHealNode,
  kFailCircuit,
  kHealCircuit,
  // Gray (partial) circuit failures (sim/gray_failures.h): value is the
  // per-cell loss probability / slot-capacity fraction; restore clears
  // both.
  kDegradeCircuit,
  kThrottleCircuit,
  kRestoreCircuit,
};

struct FaultEvent {
  Slot slot = 0;
  FaultKind kind = FaultKind::kFailNode;
  NodeId a = 0;  // the node, or the circuit's src
  NodeId b = 0;  // the circuit's dst (unused for node events)
  // kDegradeCircuit: loss probability in [0, 1];
  // kThrottleCircuit: capacity fraction in [0, 1]; otherwise unused.
  double value = 0.0;
};

// An ordered fault timeline. Script grammar, one event per line:
//
//   <slot> fail-node <node>
//   <slot> heal-node <node>
//   <slot> fail-circuit <src> <dst>
//   <slot> heal-circuit <src> <dst>
//   <slot> degrade-circuit <src> <dst> <loss_p>     # gray: lossy link
//   <slot> throttle-circuit <src> <dst> <capacity>  # gray: reduced rate
//   <slot> restore-circuit <src> <dst>              # clear gray state
//   <slot> flap-circuit <src> <dst> <cycles> <down_slots> <up_slots>
//
// flap-circuit expands at parse time into `cycles` fail/heal pairs with
// period down_slots + up_slots — a link bouncing on a short MTTR.
//
// Blank lines and '#' comments are ignored. Events are stable-sorted by
// slot, so same-slot events apply in file order.
class FaultScript {
 public:
  FaultScript() = default;

  // Parse script text; on failure returns false and sets *error to a
  // message naming the offending line. out is untouched on failure.
  // `nodes` is the topology size: node/circuit ids are validated against
  // it at parse time (line-numbered errors) instead of blowing up in the
  // injector at apply time; 0 skips the range check (programmatic use
  // where the topology is not known yet).
  static bool parse(std::string_view text, NodeId nodes, FaultScript* out,
                    std::string* error);
  // Same, reading the file at path.
  static bool load(const std::string& path, NodeId nodes, FaultScript* out,
                   std::string* error);
  // Programmatic construction (events are stable-sorted by slot).
  static FaultScript from_events(std::vector<FaultEvent> events);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

struct FaultInjectorOptions {
  // Mean slots between failures of one healthy node, and mean slots to
  // repair one failed node; 0 disables stochastic node faults. When
  // enabled, the MTTR must be positive (nothing would ever heal).
  double node_mtbf_slots = 0.0;
  double node_mttr_slots = 0.0;
  // Same, per directed circuit.
  double circuit_mtbf_slots = 0.0;
  double circuit_mttr_slots = 0.0;
  std::uint64_t seed = 1;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultScript script,
                         FaultInjectorOptions options = {});

  // Apply all faults due at the network's current slot. Call once per
  // slot, before step(), from the coordinating thread.
  void tick(SlottedNetwork& net);

  bool stochastic() const;

  // Events that actually changed network state.
  std::uint64_t scripted_applied() const { return scripted_applied_; }
  std::uint64_t stochastic_failures() const { return stochastic_failures_; }
  std::uint64_t stochastic_heals() const { return stochastic_heals_; }
  std::uint64_t faults_applied() const {
    return scripted_applied_ + stochastic_failures_ + stochastic_heals_;
  }
  // Slot of the first applied fault; -1 until one happens.
  Slot first_fault_slot() const { return first_fault_slot_; }

 private:
  // Apply one event; returns true if network state changed.
  bool apply(SlottedNetwork& net, const FaultEvent& ev);
  void note_applied(Slot slot);
  // Total transition rate of the stochastic model given the current
  // failure state (events per slot).
  double total_rate(const SlottedNetwork& net) const;
  // Draw the next stochastic transition slot from `now` (or kNone when
  // the total rate is zero).
  void schedule_next(const SlottedNetwork& net, Slot now);
  void apply_stochastic(SlottedNetwork& net);
  // Pick the k-th healthy/failed entity uniformly (linear scan; fault
  // events are rare).
  NodeId pick_node(const SlottedNetwork& net, bool failed);
  void pick_circuit(const SlottedNetwork& net, bool failed, NodeId* src,
                    NodeId* dst);

  static constexpr Slot kNone = -1;

  FaultScript script_;
  std::size_t next_event_ = 0;
  FaultInjectorOptions opt_;
  Rng rng_;
  Slot pending_slot_ = kNone;  // next stochastic transition, kNone = none
  std::uint64_t scripted_applied_ = 0;
  std::uint64_t stochastic_failures_ = 0;
  std::uint64_t stochastic_heals_ = 0;
  Slot first_fault_slot_ = kNone;
};

}  // namespace sorn
