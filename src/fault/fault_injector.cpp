#include "fault/fault_injector.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.h"

namespace sorn {

namespace {

// Strict whole-token integer parse; rejects sign-only, trailing garbage.
bool parse_int(std::string_view token, long long* out) {
  if (token.empty()) return false;
  char buf[32];
  if (token.size() >= sizeof(buf)) return false;
  token.copy(buf, token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (end == buf || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

// Strict whole-token double parse; rejects empty, trailing garbage.
bool parse_double(std::string_view token, double* out) {
  if (token.empty()) return false;
  char buf[48];
  if (token.size() >= sizeof(buf)) return false;
  token.copy(buf, token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end == buf || *end != '\0') return false;
  *out = v;
  return true;
}

bool fail_line(std::string* error, int line_no, const std::string& message) {
  if (error != nullptr) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "fault script line %d: %s", line_no,
                  message.c_str());
    *error = buf;
  }
  return false;
}

}  // namespace

bool FaultScript::parse(std::string_view text, NodeId nodes, FaultScript* out,
                        std::string* error) {
  SORN_ASSERT(out != nullptr, "parse needs an output script");
  std::vector<FaultEvent> events;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const std::vector<std::string_view> tokens = split_ws(line);
    if (tokens.empty()) continue;
    if (tokens.size() < 3)
      return fail_line(error, line_no, "expected '<slot> <action> <args>'");
    long long slot = 0;
    if (!parse_int(tokens[0], &slot) || slot < 0)
      return fail_line(error, line_no,
                       "slot must be a nonnegative integer, got '" +
                           std::string(tokens[0]) + "'");
    FaultEvent ev;
    ev.slot = static_cast<Slot>(slot);
    const std::string_view action = tokens[1];
    bool node_action = false;
    bool valued = false;  // degrade/throttle carry a probability/fraction
    bool flap = false;
    std::string args;  // usage suffix for the arity error
    if (action == "fail-node" || action == "heal-node") {
      node_action = true;
      args = " <node>";
      ev.kind = action == "fail-node" ? FaultKind::kFailNode
                                      : FaultKind::kHealNode;
    } else if (action == "fail-circuit" || action == "heal-circuit" ||
               action == "restore-circuit") {
      args = " <src> <dst>";
      ev.kind = action == "fail-circuit"   ? FaultKind::kFailCircuit
                : action == "heal-circuit" ? FaultKind::kHealCircuit
                                           : FaultKind::kRestoreCircuit;
    } else if (action == "degrade-circuit") {
      valued = true;
      args = " <src> <dst> <loss_p>";
      ev.kind = FaultKind::kDegradeCircuit;
    } else if (action == "throttle-circuit") {
      valued = true;
      args = " <src> <dst> <capacity>";
      ev.kind = FaultKind::kThrottleCircuit;
    } else if (action == "flap-circuit") {
      flap = true;
      args = " <src> <dst> <cycles> <down_slots> <up_slots>";
    } else {
      return fail_line(error, line_no,
                       "unknown action '" + std::string(action) + "'");
    }
    const std::size_t want = node_action ? 3 : (valued ? 5 : (flap ? 7 : 4));
    if (tokens.size() != want)
      return fail_line(
          error, line_no,
          "expected '<slot> " + std::string(action) + args + "'");
    // Node/circuit ids are validated against the topology size here, at
    // parse time, so a typo'd id is a line-numbered script error instead
    // of an assert deep inside the injector mid-run.
    const auto parse_node = [&](std::string_view token, NodeId* id) {
      long long v = 0;
      if (!parse_int(token, &v) || v < 0) {
        fail_line(error, line_no,
                  "node id must be a nonnegative integer, got '" +
                      std::string(token) + "'");
        return false;
      }
      if (nodes > 0 && v >= static_cast<long long>(nodes)) {
        fail_line(error, line_no,
                  "node id " + std::to_string(v) + " out of range for a " +
                      std::to_string(nodes) + "-node topology");
        return false;
      }
      *id = static_cast<NodeId>(v);
      return true;
    };
    if (!parse_node(tokens[2], &ev.a)) return false;
    if (node_action) {
      events.push_back(ev);
      continue;
    }
    if (!parse_node(tokens[3], &ev.b)) return false;
    if (ev.a == ev.b)
      return fail_line(error, line_no, "circuit endpoints must differ");
    if (valued) {
      double v = 0.0;
      const bool degrade = ev.kind == FaultKind::kDegradeCircuit;
      if (!parse_double(tokens[4], &v) || v < 0.0 || v > 1.0)
        return fail_line(error, line_no,
                         std::string(degrade ? "loss probability"
                                             : "capacity fraction") +
                             " must be in [0, 1], got '" +
                             std::string(tokens[4]) + "'");
      ev.value = v;
      events.push_back(ev);
      continue;
    }
    if (flap) {
      long long cycles = 0, down = 0, up = 0;
      if (!parse_int(tokens[4], &cycles) || cycles < 1 || cycles > 100000)
        return fail_line(error, line_no,
                         "flap cycles must be in [1, 100000], got '" +
                             std::string(tokens[4]) + "'");
      if (!parse_int(tokens[5], &down) || down < 1)
        return fail_line(error, line_no,
                         "flap down_slots must be a positive integer, got '" +
                             std::string(tokens[5]) + "'");
      if (!parse_int(tokens[6], &up) || up < 1)
        return fail_line(error, line_no,
                         "flap up_slots must be a positive integer, got '" +
                             std::string(tokens[6]) + "'");
      // Expand at parse time into ordinary fail/heal pairs so the
      // injector replays a flapping link with the scripted machinery —
      // a link bouncing on a short MTTR.
      for (long long c = 0; c < cycles; ++c) {
        const Slot base = ev.slot + static_cast<Slot>(c * (down + up));
        events.push_back({base, FaultKind::kFailCircuit, ev.a, ev.b, 0.0});
        events.push_back({base + static_cast<Slot>(down),
                          FaultKind::kHealCircuit, ev.a, ev.b, 0.0});
      }
      continue;
    }
    events.push_back(ev);
  }
  *out = from_events(std::move(events));
  return true;
}

bool FaultScript::load(const std::string& path, NodeId nodes, FaultScript* out,
                       std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open fault script: " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return parse(text, nodes, out, error);
}

FaultScript FaultScript::from_events(std::vector<FaultEvent> events) {
  // Stable: same-slot events keep their given order.
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.slot < y.slot;
                   });
  FaultScript script;
  script.events_ = std::move(events);
  return script;
}

FaultInjector::FaultInjector(FaultScript script, FaultInjectorOptions options)
    : script_(std::move(script)), opt_(options), rng_(options.seed) {
  SORN_ASSERT(opt_.node_mtbf_slots >= 0 && opt_.circuit_mtbf_slots >= 0,
              "MTBF must be nonnegative");
  SORN_ASSERT(opt_.node_mtbf_slots <= 0 || opt_.node_mttr_slots > 0,
              "node faults need a positive MTTR");
  SORN_ASSERT(opt_.circuit_mtbf_slots <= 0 || opt_.circuit_mttr_slots > 0,
              "circuit faults need a positive MTTR");
}

bool FaultInjector::stochastic() const {
  return opt_.node_mtbf_slots > 0 || opt_.circuit_mtbf_slots > 0;
}

void FaultInjector::note_applied(Slot slot) {
  if (first_fault_slot_ == kNone) first_fault_slot_ = slot;
}

bool FaultInjector::apply(SlottedNetwork& net, const FaultEvent& ev) {
  const NodeId n = net.node_count();
  SORN_ASSERT(ev.a >= 0 && ev.a < n, "fault event node out of range");
  switch (ev.kind) {
    case FaultKind::kFailNode:
      return net.fail_node(ev.a);
    case FaultKind::kHealNode:
      return net.heal_node(ev.a);
    case FaultKind::kFailCircuit:
      SORN_ASSERT(ev.b >= 0 && ev.b < n, "fault event node out of range");
      return net.fail_circuit(ev.a, ev.b);
    case FaultKind::kHealCircuit:
      SORN_ASSERT(ev.b >= 0 && ev.b < n, "fault event node out of range");
      return net.heal_circuit(ev.a, ev.b);
    case FaultKind::kDegradeCircuit:
      SORN_ASSERT(ev.b >= 0 && ev.b < n, "fault event node out of range");
      return net.degrade_circuit(ev.a, ev.b, ev.value);
    case FaultKind::kThrottleCircuit:
      SORN_ASSERT(ev.b >= 0 && ev.b < n, "fault event node out of range");
      return net.throttle_circuit(ev.a, ev.b, ev.value);
    case FaultKind::kRestoreCircuit:
      SORN_ASSERT(ev.b >= 0 && ev.b < n, "fault event node out of range");
      return net.restore_circuit(ev.a, ev.b);
  }
  return false;
}

double FaultInjector::total_rate(const SlottedNetwork& net) const {
  const FailureView& view = net.failure_view();
  const auto n = static_cast<double>(net.node_count());
  double rate = 0.0;
  if (opt_.node_mtbf_slots > 0) {
    const auto failed = static_cast<double>(view.failed_node_count());
    rate += (n - failed) / opt_.node_mtbf_slots;
    rate += failed / opt_.node_mttr_slots;
  }
  if (opt_.circuit_mtbf_slots > 0) {
    const double circuits = n * (n - 1.0);
    const auto failed = static_cast<double>(view.failed_circuit_count());
    rate += (circuits - failed) / opt_.circuit_mtbf_slots;
    rate += failed / opt_.circuit_mttr_slots;
  }
  return rate;
}

void FaultInjector::schedule_next(const SlottedNetwork& net, Slot now) {
  const double rate = total_rate(net);
  if (rate <= 0.0) {
    pending_slot_ = kNone;
    return;
  }
  const double delta = rng_.next_exponential(1.0 / rate);
  const double ceiled = std::ceil(delta);
  pending_slot_ =
      now + std::max<Slot>(1, static_cast<Slot>(ceiled));
}

NodeId FaultInjector::pick_node(const SlottedNetwork& net, bool failed) {
  const FailureView& view = net.failure_view();
  const NodeId n = net.node_count();
  const std::uint64_t pool =
      failed ? view.failed_node_count()
             : static_cast<std::uint64_t>(n) - view.failed_node_count();
  SORN_ASSERT(pool > 0, "no eligible node for stochastic fault");
  std::uint64_t k = rng_.next_below(pool);
  for (NodeId i = 0; i < n; ++i) {
    if (view.is_node_failed(i) != failed) continue;
    if (k == 0) return i;
    --k;
  }
  SORN_ASSERT(false, "stochastic node pick out of sync with failure view");
  return 0;
}

void FaultInjector::pick_circuit(const SlottedNetwork& net, bool failed,
                                 NodeId* src, NodeId* dst) {
  const FailureView& view = net.failure_view();
  const NodeId n = net.node_count();
  const std::uint64_t circuits = static_cast<std::uint64_t>(n) *
                                 static_cast<std::uint64_t>(n - 1);
  const std::uint64_t pool = failed
                                 ? view.failed_circuit_count()
                                 : circuits - view.failed_circuit_count();
  SORN_ASSERT(pool > 0, "no eligible circuit for stochastic fault");
  std::uint64_t k = rng_.next_below(pool);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      if (view.is_circuit_failed(s, d) != failed) continue;
      if (k == 0) {
        *src = s;
        *dst = d;
        return;
      }
      --k;
    }
  }
  SORN_ASSERT(false, "stochastic circuit pick out of sync with failure view");
}

void FaultInjector::apply_stochastic(SlottedNetwork& net) {
  const FailureView& view = net.failure_view();
  const auto n = static_cast<double>(net.node_count());
  double node_fail_rate = 0.0, node_heal_rate = 0.0;
  double circuit_fail_rate = 0.0, circuit_heal_rate = 0.0;
  if (opt_.node_mtbf_slots > 0) {
    const auto failed = static_cast<double>(view.failed_node_count());
    node_fail_rate = (n - failed) / opt_.node_mtbf_slots;
    node_heal_rate = failed / opt_.node_mttr_slots;
  }
  if (opt_.circuit_mtbf_slots > 0) {
    const double circuits = n * (n - 1.0);
    const auto failed = static_cast<double>(view.failed_circuit_count());
    circuit_fail_rate = (circuits - failed) / opt_.circuit_mtbf_slots;
    circuit_heal_rate = failed / opt_.circuit_mttr_slots;
  }
  const double total = node_fail_rate + node_heal_rate + circuit_fail_rate +
                       circuit_heal_rate;
  if (total <= 0.0) return;
  double r = rng_.next_double() * total;
  const Slot now = net.now();
  if (r < node_fail_rate) {
    if (net.fail_node(pick_node(net, /*failed=*/false))) {
      ++stochastic_failures_;
      note_applied(now);
    }
    return;
  }
  r -= node_fail_rate;
  if (r < node_heal_rate) {
    if (net.heal_node(pick_node(net, /*failed=*/true))) {
      ++stochastic_heals_;
      note_applied(now);
    }
    return;
  }
  r -= node_heal_rate;
  NodeId src = 0, dst = 0;
  if (r < circuit_fail_rate) {
    pick_circuit(net, /*failed=*/false, &src, &dst);
    if (net.fail_circuit(src, dst)) {
      ++stochastic_failures_;
      note_applied(now);
    }
    return;
  }
  pick_circuit(net, /*failed=*/true, &src, &dst);
  if (net.heal_circuit(src, dst)) {
    ++stochastic_heals_;
    note_applied(now);
  }
}

void FaultInjector::tick(SlottedNetwork& net) {
  // All fault RNG and fail/heal mutation happens here, between slots on
  // the coordinating thread — that is what keeps --threads N runs
  // byte-identical under stochastic fault injection.
  SORN_ASSERT(!net.in_parallel_sweep(), "fault tick during parallel sweep");
  const Slot now = net.now();
  bool changed = false;
  const std::vector<FaultEvent>& events = script_.events();
  while (next_event_ < events.size() && events[next_event_].slot <= now) {
    const FaultEvent& ev = events[next_event_++];
    if (apply(net, ev)) {
      ++scripted_applied_;
      note_applied(now);
      changed = true;
    }
  }
  if (!stochastic()) return;
  // Transition rates change with the failure state; the exponential is
  // memoryless, so redrawing the pending transition after any state
  // change keeps the model exact.
  if (pending_slot_ == kNone || changed) schedule_next(net, now);
  while (pending_slot_ != kNone && pending_slot_ <= now) {
    apply_stochastic(net);
    schedule_next(net, now);
  }
}

}  // namespace sorn
