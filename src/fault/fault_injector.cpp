#include "fault/fault_injector.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.h"

namespace sorn {

namespace {

// Strict whole-token integer parse; rejects sign-only, trailing garbage.
bool parse_int(std::string_view token, long long* out) {
  if (token.empty()) return false;
  char buf[32];
  if (token.size() >= sizeof(buf)) return false;
  token.copy(buf, token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (end == buf || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

bool fail_line(std::string* error, int line_no, const std::string& message) {
  if (error != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "fault script line %d: %s", line_no,
                  message.c_str());
    *error = buf;
  }
  return false;
}

}  // namespace

bool FaultScript::parse(std::string_view text, FaultScript* out,
                        std::string* error) {
  SORN_ASSERT(out != nullptr, "parse needs an output script");
  std::vector<FaultEvent> events;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const std::vector<std::string_view> tokens = split_ws(line);
    if (tokens.empty()) continue;
    if (tokens.size() < 3)
      return fail_line(error, line_no, "expected '<slot> <action> <args>'");
    long long slot = 0;
    if (!parse_int(tokens[0], &slot) || slot < 0)
      return fail_line(error, line_no,
                       "slot must be a nonnegative integer, got '" +
                           std::string(tokens[0]) + "'");
    FaultEvent ev;
    ev.slot = static_cast<Slot>(slot);
    const std::string_view action = tokens[1];
    const bool node_action = action == "fail-node" || action == "heal-node";
    const bool circuit_action =
        action == "fail-circuit" || action == "heal-circuit";
    if (!node_action && !circuit_action)
      return fail_line(error, line_no,
                       "unknown action '" + std::string(action) + "'");
    const std::size_t want = node_action ? 3 : 4;
    if (tokens.size() != want)
      return fail_line(error, line_no,
                       node_action
                           ? "expected '<slot> " + std::string(action) +
                                 " <node>'"
                           : "expected '<slot> " + std::string(action) +
                                 " <src> <dst>'");
    long long a = 0;
    if (!parse_int(tokens[2], &a) || a < 0)
      return fail_line(error, line_no,
                       "node id must be a nonnegative integer, got '" +
                           std::string(tokens[2]) + "'");
    ev.a = static_cast<NodeId>(a);
    if (node_action) {
      ev.kind = action == "fail-node" ? FaultKind::kFailNode
                                      : FaultKind::kHealNode;
    } else {
      long long b = 0;
      if (!parse_int(tokens[3], &b) || b < 0)
        return fail_line(error, line_no,
                         "node id must be a nonnegative integer, got '" +
                             std::string(tokens[3]) + "'");
      if (a == b)
        return fail_line(error, line_no,
                         "circuit endpoints must differ");
      ev.b = static_cast<NodeId>(b);
      ev.kind = action == "fail-circuit" ? FaultKind::kFailCircuit
                                         : FaultKind::kHealCircuit;
    }
    events.push_back(ev);
  }
  *out = from_events(std::move(events));
  return true;
}

bool FaultScript::load(const std::string& path, FaultScript* out,
                       std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open fault script: " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return parse(text, out, error);
}

FaultScript FaultScript::from_events(std::vector<FaultEvent> events) {
  // Stable: same-slot events keep their given order.
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.slot < y.slot;
                   });
  FaultScript script;
  script.events_ = std::move(events);
  return script;
}

FaultInjector::FaultInjector(FaultScript script, FaultInjectorOptions options)
    : script_(std::move(script)), opt_(options), rng_(options.seed) {
  SORN_ASSERT(opt_.node_mtbf_slots >= 0 && opt_.circuit_mtbf_slots >= 0,
              "MTBF must be nonnegative");
  SORN_ASSERT(opt_.node_mtbf_slots <= 0 || opt_.node_mttr_slots > 0,
              "node faults need a positive MTTR");
  SORN_ASSERT(opt_.circuit_mtbf_slots <= 0 || opt_.circuit_mttr_slots > 0,
              "circuit faults need a positive MTTR");
}

bool FaultInjector::stochastic() const {
  return opt_.node_mtbf_slots > 0 || opt_.circuit_mtbf_slots > 0;
}

void FaultInjector::note_applied(Slot slot) {
  if (first_fault_slot_ == kNone) first_fault_slot_ = slot;
}

bool FaultInjector::apply(SlottedNetwork& net, const FaultEvent& ev) {
  const NodeId n = net.node_count();
  SORN_ASSERT(ev.a >= 0 && ev.a < n, "fault event node out of range");
  switch (ev.kind) {
    case FaultKind::kFailNode:
      return net.fail_node(ev.a);
    case FaultKind::kHealNode:
      return net.heal_node(ev.a);
    case FaultKind::kFailCircuit:
      SORN_ASSERT(ev.b >= 0 && ev.b < n, "fault event node out of range");
      return net.fail_circuit(ev.a, ev.b);
    case FaultKind::kHealCircuit:
      SORN_ASSERT(ev.b >= 0 && ev.b < n, "fault event node out of range");
      return net.heal_circuit(ev.a, ev.b);
  }
  return false;
}

double FaultInjector::total_rate(const SlottedNetwork& net) const {
  const FailureView& view = net.failure_view();
  const auto n = static_cast<double>(net.node_count());
  double rate = 0.0;
  if (opt_.node_mtbf_slots > 0) {
    const auto failed = static_cast<double>(view.failed_node_count());
    rate += (n - failed) / opt_.node_mtbf_slots;
    rate += failed / opt_.node_mttr_slots;
  }
  if (opt_.circuit_mtbf_slots > 0) {
    const double circuits = n * (n - 1.0);
    const auto failed = static_cast<double>(view.failed_circuit_count());
    rate += (circuits - failed) / opt_.circuit_mtbf_slots;
    rate += failed / opt_.circuit_mttr_slots;
  }
  return rate;
}

void FaultInjector::schedule_next(const SlottedNetwork& net, Slot now) {
  const double rate = total_rate(net);
  if (rate <= 0.0) {
    pending_slot_ = kNone;
    return;
  }
  const double delta = rng_.next_exponential(1.0 / rate);
  const double ceiled = std::ceil(delta);
  pending_slot_ =
      now + std::max<Slot>(1, static_cast<Slot>(ceiled));
}

NodeId FaultInjector::pick_node(const SlottedNetwork& net, bool failed) {
  const FailureView& view = net.failure_view();
  const NodeId n = net.node_count();
  const std::uint64_t pool =
      failed ? view.failed_node_count()
             : static_cast<std::uint64_t>(n) - view.failed_node_count();
  SORN_ASSERT(pool > 0, "no eligible node for stochastic fault");
  std::uint64_t k = rng_.next_below(pool);
  for (NodeId i = 0; i < n; ++i) {
    if (view.is_node_failed(i) != failed) continue;
    if (k == 0) return i;
    --k;
  }
  SORN_ASSERT(false, "stochastic node pick out of sync with failure view");
  return 0;
}

void FaultInjector::pick_circuit(const SlottedNetwork& net, bool failed,
                                 NodeId* src, NodeId* dst) {
  const FailureView& view = net.failure_view();
  const NodeId n = net.node_count();
  const std::uint64_t circuits = static_cast<std::uint64_t>(n) *
                                 static_cast<std::uint64_t>(n - 1);
  const std::uint64_t pool = failed
                                 ? view.failed_circuit_count()
                                 : circuits - view.failed_circuit_count();
  SORN_ASSERT(pool > 0, "no eligible circuit for stochastic fault");
  std::uint64_t k = rng_.next_below(pool);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      if (view.is_circuit_failed(s, d) != failed) continue;
      if (k == 0) {
        *src = s;
        *dst = d;
        return;
      }
      --k;
    }
  }
  SORN_ASSERT(false, "stochastic circuit pick out of sync with failure view");
}

void FaultInjector::apply_stochastic(SlottedNetwork& net) {
  const FailureView& view = net.failure_view();
  const auto n = static_cast<double>(net.node_count());
  double node_fail_rate = 0.0, node_heal_rate = 0.0;
  double circuit_fail_rate = 0.0, circuit_heal_rate = 0.0;
  if (opt_.node_mtbf_slots > 0) {
    const auto failed = static_cast<double>(view.failed_node_count());
    node_fail_rate = (n - failed) / opt_.node_mtbf_slots;
    node_heal_rate = failed / opt_.node_mttr_slots;
  }
  if (opt_.circuit_mtbf_slots > 0) {
    const double circuits = n * (n - 1.0);
    const auto failed = static_cast<double>(view.failed_circuit_count());
    circuit_fail_rate = (circuits - failed) / opt_.circuit_mtbf_slots;
    circuit_heal_rate = failed / opt_.circuit_mttr_slots;
  }
  const double total = node_fail_rate + node_heal_rate + circuit_fail_rate +
                       circuit_heal_rate;
  if (total <= 0.0) return;
  double r = rng_.next_double() * total;
  const Slot now = net.now();
  if (r < node_fail_rate) {
    if (net.fail_node(pick_node(net, /*failed=*/false))) {
      ++stochastic_failures_;
      note_applied(now);
    }
    return;
  }
  r -= node_fail_rate;
  if (r < node_heal_rate) {
    if (net.heal_node(pick_node(net, /*failed=*/true))) {
      ++stochastic_heals_;
      note_applied(now);
    }
    return;
  }
  r -= node_heal_rate;
  NodeId src = 0, dst = 0;
  if (r < circuit_fail_rate) {
    pick_circuit(net, /*failed=*/false, &src, &dst);
    if (net.fail_circuit(src, dst)) {
      ++stochastic_failures_;
      note_applied(now);
    }
    return;
  }
  pick_circuit(net, /*failed=*/true, &src, &dst);
  if (net.heal_circuit(src, dst)) {
    ++stochastic_heals_;
    note_applied(now);
  }
}

void FaultInjector::tick(SlottedNetwork& net) {
  // All fault RNG and fail/heal mutation happens here, between slots on
  // the coordinating thread — that is what keeps --threads N runs
  // byte-identical under stochastic fault injection.
  SORN_ASSERT(!net.in_parallel_sweep(), "fault tick during parallel sweep");
  const Slot now = net.now();
  bool changed = false;
  const std::vector<FaultEvent>& events = script_.events();
  while (next_event_ < events.size() && events[next_event_].slot <= now) {
    const FaultEvent& ev = events[next_event_++];
    if (apply(net, ev)) {
      ++scripted_applied_;
      note_applied(now);
      changed = true;
    }
  }
  if (!stochastic()) return;
  // Transition rates change with the failure state; the exponential is
  // memoryless, so redrawing the pending transition after any state
  // change keeps the model exact.
  if (pending_slot_ == kNone || changed) schedule_next(net, now);
  while (pending_slot_ != kNone && pending_slot_ <= now) {
    apply_stochastic(net);
    schedule_next(net, now);
  }
}

}  // namespace sorn
