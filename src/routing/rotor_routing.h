// Opera-style routing over a slow rotor schedule (Mellette et al.).
//
// With a rotor schedule (ScheduleBuilder::rotor) and u phase-shifted
// uplink lanes, every node has u circuits active at any instant; their
// union is an expander that changes only every dwell. Latency-sensitive
// (short) flows ride multi-hop paths over the currently-active union —
// delta_m = 0, paths are up immediately; bulk flows take the direct
// circuit and wait for the rotation (delta_m = N-1 over u lanes).
//
// RotorRouter implements the short-flow path choice; bulk flows are the
// direct path (route_bulk). Callers split flows by size, as Opera does.
#pragma once

#include "routing/router.h"
#include "topo/schedule.h"

namespace sorn {

class RotorRouter : public Router {
 public:
  // schedule must be a rotor (or any) schedule; lanes must match the
  // SlottedNetwork's lane count so the active union is computed for the
  // same instantaneous topology the fabric realizes.
  RotorRouter(const CircuitSchedule* schedule, int lanes, int max_hops);

  // Shortest path over the union of the lanes' active matchings at slot
  // `now`. When dst is farther than max_hops in the current union (rare
  // with enough lanes on a rotor_random schedule), falls back to the
  // direct circuit — the flow then pays rotation latency like bulk, which
  // is Opera's non-minimal fallback behaviour.
  Path route(NodeId src, NodeId dst, Slot now, Rng& rng) const override;

  // Fraction of (src, dst, window) combinations the BFS cannot reach
  // within the hop budget — provisioning diagnostic; 0 means every short
  // flow always gets an expander path.
  double fallback_fraction() const;
  int max_hops() const override { return max_hops_; }

  // The direct single-hop path bulk flows use (waits for the rotation).
  static Path route_bulk(NodeId src, NodeId dst) {
    return Path::of({src, dst});
  }

  // Neighbors of `node` in the active union at slot `now` (one per lane,
  // deduplicated).
  std::vector<NodeId> active_neighbors(NodeId node, Slot now) const;

 private:
  const CircuitSchedule* schedule_;
  int lanes_;
  int max_hops_;
};

}  // namespace sorn
