#include "routing/rotor_routing.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace sorn {

RotorRouter::RotorRouter(const CircuitSchedule* schedule, int lanes,
                         int max_hops)
    : schedule_(schedule), lanes_(lanes), max_hops_(max_hops) {
  SORN_ASSERT(schedule_ != nullptr, "rotor router needs a schedule");
  SORN_ASSERT(lanes_ >= 1, "need at least one lane");
  SORN_ASSERT(max_hops_ >= 1 && max_hops_ <= Path::kMaxNodes - 1,
              "hop budget out of range");
}

std::vector<NodeId> RotorRouter::active_neighbors(NodeId node,
                                                  Slot now) const {
  std::vector<NodeId> nbrs;
  nbrs.reserve(static_cast<std::size_t>(lanes_));
  for (int lane = 0; lane < lanes_; ++lane) {
    const Slot t = now + lane_phase(schedule_->period(), lanes_, lane);
    const NodeId peer = schedule_->dst_of(node, t);
    if (peer != node &&
        std::find(nbrs.begin(), nbrs.end(), peer) == nbrs.end())
      nbrs.push_back(peer);
  }
  return nbrs;
}

Path RotorRouter::route(NodeId src, NodeId dst, Slot now, Rng& /*rng*/) const {
  SORN_ASSERT(src != dst, "cannot route a node to itself");
  // BFS over the active union.
  const NodeId n = schedule_->node_count();
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  std::queue<NodeId> frontier;
  frontier.push(src);
  parent[static_cast<std::size_t>(src)] = src;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (depth[static_cast<std::size_t>(u)] >= max_hops_) continue;
    for (const NodeId v : active_neighbors(u, now)) {
      if (parent[static_cast<std::size_t>(v)] != kNoNode) continue;
      parent[static_cast<std::size_t>(v)] = u;
      depth[static_cast<std::size_t>(v)] = depth[static_cast<std::size_t>(u)] + 1;
      if (v == dst) {
        std::vector<NodeId> rev{dst};
        for (NodeId w = dst; w != src;
             w = parent[static_cast<std::size_t>(w)])
          rev.push_back(parent[static_cast<std::size_t>(w)]);
        Path path;
        for (auto it = rev.rbegin(); it != rev.rend(); ++it)
          path.push_back(*it);
        return path;
      }
      frontier.push(v);
    }
  }
  // Unreachable within the budget in this window: fall back to the direct
  // circuit (the flow waits for the rotation, like bulk).
  return route_bulk(src, dst);
}

double RotorRouter::fallback_fraction() const {
  const NodeId n = schedule_->node_count();
  // Distinct union topologies: one per dwell boundary of any lane. Sample
  // each schedule slot where lane 0's matching changes.
  std::int64_t total = 0;
  std::int64_t fallbacks = 0;
  Rng rng(1);
  for (Slot t = 0; t < schedule_->period(); ++t) {
    if (t > 0 && schedule_->matching_at(t) == schedule_->matching_at(t - 1))
      continue;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        if (s == d) continue;
        ++total;
        if (route(s, d, t, rng).hop_count() == 1 &&
            [&] {
              const auto nbrs = active_neighbors(s, t);
              return std::find(nbrs.begin(), nbrs.end(), d) == nbrs.end();
            }())
          ++fallbacks;
      }
    }
  }
  return total > 0 ? static_cast<double>(fallbacks) /
                         static_cast<double>(total)
                   : 0.0;
}

}  // namespace sorn
