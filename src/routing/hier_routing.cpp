#include "routing/hier_routing.h"

#include "util/assert.h"

namespace sorn {

HierSornRouter::HierSornRouter(const CircuitSchedule* schedule,
                               const Hierarchy* hierarchy, LbMode mode)
    : schedule_(schedule), hier_(hierarchy), mode_(mode) {
  SORN_ASSERT(schedule_ != nullptr && hier_ != nullptr,
              "hierarchical router needs a schedule and a hierarchy");
  SORN_ASSERT(schedule_->node_count() == hier_->node_count(),
              "schedule and hierarchy disagree on node count");
}

NodeId HierSornRouter::pick_pod_intermediate(NodeId src, Slot now,
                                             Rng& rng) const {
  if (hier_->pod_size() < 2) return src;
  if (mode_ == LbMode::kFirstAvailable) {
    for (Slot t = now; t < now + schedule_->period(); ++t) {
      if (schedule_->kind_at(t) != SlotKind::kIntra) continue;
      const NodeId peer = schedule_->dst_of(src, t);
      if (peer != src) return peer;
    }
    return src;
  }
  const CliqueId pod = hier_->pod_of(src);
  const NodeId base = pod * hier_->pod_size();
  NodeId peer = src;
  do {
    peer = base + static_cast<NodeId>(rng.next_below(
                      static_cast<std::uint64_t>(hier_->pod_size())));
  } while (peer == src);
  return peer;
}

NodeId HierSornRouter::pick_pod_landing(NodeId from, CliqueId target_pod,
                                        Slot now, Rng& rng) const {
  if (mode_ == LbMode::kFirstAvailable) {
    for (Slot t = now; t < now + schedule_->period(); ++t) {
      if (schedule_->kind_at(t) != SlotKind::kInter) continue;
      const NodeId peer = schedule_->dst_of(from, t);
      if (peer != from && hier_->pod_of(peer) == target_pod) return peer;
    }
    SORN_ASSERT(false, "no inter circuit to the target pod");
  }
  const NodeId base = target_pod * hier_->pod_size();
  return base + static_cast<NodeId>(rng.next_below(
                    static_cast<std::uint64_t>(hier_->pod_size())));
}

NodeId HierSornRouter::pick_cluster_landing(NodeId from,
                                            CliqueId target_cluster, Slot now,
                                            Rng& rng) const {
  if (mode_ == LbMode::kFirstAvailable) {
    for (Slot t = now; t < now + schedule_->period(); ++t) {
      if (schedule_->kind_at(t) != SlotKind::kGlobal) continue;
      const NodeId peer = schedule_->dst_of(from, t);
      if (peer != from && hier_->cluster_of(peer) == target_cluster)
        return peer;
    }
    SORN_ASSERT(false, "no global circuit to the target cluster");
  }
  const NodeId base = target_cluster * hier_->cluster_size();
  return base + static_cast<NodeId>(rng.next_below(
                    static_cast<std::uint64_t>(hier_->cluster_size())));
}

Path HierSornRouter::route(NodeId src, NodeId dst, Slot now, Rng& rng) const {
  SORN_ASSERT(src != dst, "cannot route a node to itself");
  const NodeId lb = pick_pod_intermediate(src, now, rng);
  if (hier_->same_pod(src, dst)) {
    return Path::of({src, lb, dst});
  }
  if (hier_->same_cluster(src, dst)) {
    const NodeId landing = pick_pod_landing(lb, hier_->pod_of(dst), now, rng);
    return Path::of({src, lb, landing, dst});
  }
  const NodeId v = pick_cluster_landing(lb, hier_->cluster_of(dst), now, rng);
  if (hier_->same_pod(v, dst) || v == dst) {
    return Path::of({src, lb, v, dst});
  }
  const NodeId w = pick_pod_landing(v, hier_->pod_of(dst), now, rng);
  return Path::of({src, lb, v, w, dst});
}

}  // namespace sorn
