// Shared failure state: which nodes and directed circuits are down.
//
// One FailureView is owned by the SlottedNetwork (the data plane consults
// it on every transmit) and borrowed by routers (to keep failed
// intermediates out of load-balancing spray) and by the control plane (to
// mask dead nodes out of clique planning and to trigger failure re-plans).
// It sits in the routing layer because routers are the lowest layer that
// must read it; everything above borrows a const pointer.
//
// Semantics match the simulator's outage model: a failed node neither
// transmits nor receives on any circuit; a failed circuit disables one
// directed virtual edge. Cells already queued toward a failed element stay
// queued and resume on heal — failures never drop cells by themselves.
//
// Mutators are idempotent and return whether the state actually changed,
// so callers (telemetry, fault injectors) can suppress duplicate events.
// version() increments on every real change; consumers that cache derived
// state (the control plane's "have I planned around this failure set yet")
// compare versions instead of diffing bitmaps.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.h"
#include "util/types.h"

namespace sorn {

class FailureView {
 public:
  FailureView() = default;
  explicit FailureView(NodeId nodes)
      : n_(nodes),
        failed_nodes_(static_cast<std::size_t>(nodes), 0),
        failed_circuits_(static_cast<std::size_t>(nodes) *
                             static_cast<std::size_t>(nodes),
                         0) {
    SORN_ASSERT(nodes >= 0, "node count must be nonnegative");
  }

  NodeId node_count() const { return n_; }

  // ---- Hot-path queries ----
  bool any_failures() const {
    return failed_node_count_ + failed_circuit_count_ > 0;
  }
  bool is_node_failed(NodeId node) const {
    return failed_nodes_[static_cast<std::size_t>(node)] != 0;
  }
  bool is_circuit_failed(NodeId src, NodeId dst) const {
    return failed_circuits_[edge_index(src, dst)] != 0;
  }
  // True when a cell can actually cross src -> dst this slot: neither
  // endpoint is down and the directed circuit is up.
  bool usable(NodeId src, NodeId dst) const {
    return failed_nodes_[static_cast<std::size_t>(src)] == 0 &&
           failed_nodes_[static_cast<std::size_t>(dst)] == 0 &&
           failed_circuits_[edge_index(src, dst)] == 0;
  }

  std::uint64_t failed_node_count() const { return failed_node_count_; }
  std::uint64_t failed_circuit_count() const { return failed_circuit_count_; }
  // The currently failed directed circuits, sorted by (src, dst). Lets
  // consumers (SlottedNetwork::heal_all, recovery sweeps) iterate exactly
  // the failed set instead of scanning all N^2 pairs with
  // is_circuit_failed — quadratic even when one circuit is down.
  const std::vector<std::pair<NodeId, NodeId>>& failed_circuits() const {
    return failed_circuit_list_;
  }
  // Monotonic change counter; bumps once per state-changing mutation.
  std::uint64_t version() const { return version_; }

  // ---- Mutators (idempotent; return true when state changed) ----
  bool fail_node(NodeId node) {
    std::uint8_t& f = failed_nodes_[static_cast<std::size_t>(node)];
    if (f != 0) return false;
    f = 1;
    ++failed_node_count_;
    ++version_;
    return true;
  }
  bool heal_node(NodeId node) {
    std::uint8_t& f = failed_nodes_[static_cast<std::size_t>(node)];
    if (f == 0) return false;
    f = 0;
    --failed_node_count_;
    ++version_;
    return true;
  }
  bool fail_circuit(NodeId src, NodeId dst) {
    std::uint8_t& f = failed_circuits_[edge_index(src, dst)];
    if (f != 0) return false;
    f = 1;
    const std::pair<NodeId, NodeId> edge{src, dst};
    failed_circuit_list_.insert(
        std::lower_bound(failed_circuit_list_.begin(),
                         failed_circuit_list_.end(), edge),
        edge);
    ++failed_circuit_count_;
    ++version_;
    return true;
  }
  bool heal_circuit(NodeId src, NodeId dst) {
    std::uint8_t& f = failed_circuits_[edge_index(src, dst)];
    if (f == 0) return false;
    f = 0;
    const std::pair<NodeId, NodeId> edge{src, dst};
    failed_circuit_list_.erase(
        std::lower_bound(failed_circuit_list_.begin(),
                         failed_circuit_list_.end(), edge));
    --failed_circuit_count_;
    ++version_;
    return true;
  }

  // Heal everything at once; returns the number of entities healed.
  std::uint64_t heal_all() {
    const std::uint64_t healed = failed_node_count_ + failed_circuit_count_;
    if (healed == 0) return 0;
    std::fill(failed_nodes_.begin(), failed_nodes_.end(), std::uint8_t{0});
    std::fill(failed_circuits_.begin(), failed_circuits_.end(),
              std::uint8_t{0});
    failed_circuit_list_.clear();
    failed_node_count_ = 0;
    failed_circuit_count_ = 0;
    ++version_;
    return healed;
  }

 private:
  std::size_t edge_index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  NodeId n_ = 0;
  std::vector<std::uint8_t> failed_nodes_;
  std::vector<std::uint8_t> failed_circuits_;
  // Sorted mirror of failed_circuits_ for O(failed) iteration; failures
  // are rare, so the O(failed) sorted insert/erase never matters.
  std::vector<std::pair<NodeId, NodeId>> failed_circuit_list_;
  std::uint64_t failed_node_count_ = 0;
  std::uint64_t failed_circuit_count_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace sorn
