#include "routing/vlb.h"

#include "util/assert.h"

namespace sorn {

namespace {

// Bounded rejection for the failure-aware random intermediate: enough
// tries that missing every healthy node is vanishingly unlikely at any
// realistic failure fraction, small enough to bound the worst case.
constexpr int kMaxRandomTries = 64;

}  // namespace

VlbRouter::VlbRouter(const CircuitSchedule* schedule, LbMode mode)
    : schedule_(schedule), mode_(mode) {
  SORN_ASSERT(schedule_ != nullptr, "VLB router needs a schedule");
}

Path VlbRouter::direct(NodeId src, NodeId dst) { return Path::of({src, dst}); }

Path VlbRouter::route(NodeId src, NodeId dst, Slot now, Rng& rng) const {
  SORN_ASSERT(src != dst, "cannot route a node to itself");
  const bool avoid = avoid_failures();
  NodeId mid = src;
  if (mode_ == LbMode::kFirstAvailable) {
    // The neighbor on the current/next circuit: effectively zero added
    // intrinsic latency for the first hop (paper Sec. 4). With failures
    // visible, skip intermediates we could not reach or leave.
    for (Slot t = now; t < now + schedule_->period(); ++t) {
      const NodeId peer = schedule_->dst_of(src, t);
      if (peer == src) continue;
      if (avoid && peer != dst &&
          (!failures_->usable(src, peer) || !failures_->usable(peer, dst))) {
        continue;
      }
      mid = peer;
      break;
    }
  } else if (!avoid) {
    const auto n = static_cast<std::uint64_t>(schedule_->node_count());
    do {
      mid = static_cast<NodeId>(rng.next_below(n));
    } while (mid == src);
  } else {
    const auto n = static_cast<std::uint64_t>(schedule_->node_count());
    for (int tries = 0; tries < kMaxRandomTries; ++tries) {
      const NodeId pick = static_cast<NodeId>(rng.next_below(n));
      if (pick == src) continue;
      if (pick != dst && !failures_->usable(src, pick)) continue;
      if (pick != dst && !failures_->usable(pick, dst)) continue;
      mid = pick;
      break;
    }
    // All tries hit failed nodes: fall through with mid == src, which
    // collapses to the direct path below (outage semantics take over).
  }
  if (mid == dst || mid == src) return Path::of({src, dst});
  return Path::of({src, mid, dst});
}

}  // namespace sorn
