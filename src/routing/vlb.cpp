#include "routing/vlb.h"

#include "util/assert.h"

namespace sorn {

VlbRouter::VlbRouter(const CircuitSchedule* schedule, LbMode mode)
    : schedule_(schedule), mode_(mode) {
  SORN_ASSERT(schedule_ != nullptr, "VLB router needs a schedule");
}

Path VlbRouter::direct(NodeId src, NodeId dst) { return Path::of({src, dst}); }

Path VlbRouter::route(NodeId src, NodeId dst, Slot now, Rng& rng) const {
  SORN_ASSERT(src != dst, "cannot route a node to itself");
  NodeId mid = src;
  if (mode_ == LbMode::kFirstAvailable) {
    // The neighbor on the current/next circuit: effectively zero added
    // intrinsic latency for the first hop (paper Sec. 4).
    for (Slot t = now; t < now + schedule_->period(); ++t) {
      const NodeId peer = schedule_->dst_of(src, t);
      if (peer != src) {
        mid = peer;
        break;
      }
    }
  } else {
    const auto n = static_cast<std::uint64_t>(schedule_->node_count());
    do {
      mid = static_cast<NodeId>(rng.next_below(n));
    } while (mid == src);
  }
  if (mid == dst || mid == src) return Path::of({src, dst});
  return Path::of({src, mid, dst});
}

}  // namespace sorn
