// Router interface: source-selected, oblivious-within-configuration routing.
//
// A Router chooses the complete hop sequence for a cell at injection time.
// It may consult the circuit schedule (for "first available link" choices)
// and the RNG (for VLB intermediates) but never per-flow demand — that is
// the defining property of the (semi-)oblivious designs studied here.
#pragma once

#include "routing/path.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/types.h"

namespace sorn {

// How load-balancing intermediates are picked.
enum class LbMode {
  // The neighbor on the next upcoming circuit of the right kind — the
  // paper's "first available link" rule; deterministic given the slot.
  kFirstAvailable,
  // A uniformly random eligible intermediate — classic VLB; easier to
  // analyze, slightly worse latency.
  kRandom,
};

class Router {
 public:
  virtual ~Router() = default;

  // Path for a cell from src to dst injected at slot `now`. src != dst.
  virtual Path route(NodeId src, NodeId dst, Slot now, Rng& rng) const = 0;

  // Upper bound on hop_count() of any returned path.
  virtual int max_hops() const = 0;
};

}  // namespace sorn
