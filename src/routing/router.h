// Router interface: source-selected, oblivious-within-configuration routing.
//
// A Router chooses the complete hop sequence for a cell at injection time.
// It may consult the circuit schedule (for "first available link" choices)
// and the RNG (for VLB intermediates) but never per-flow demand — that is
// the defining property of the (semi-)oblivious designs studied here.
#pragma once

#include "routing/failure_view.h"
#include "routing/path.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/types.h"

namespace sorn {

// How load-balancing intermediates are picked.
enum class LbMode {
  // The neighbor on the next upcoming circuit of the right kind — the
  // paper's "first available link" rule; deterministic given the slot.
  kFirstAvailable,
  // A uniformly random eligible intermediate — classic VLB; easier to
  // analyze, slightly worse latency.
  kRandom,
};

class Router {
 public:
  virtual ~Router() = default;

  // Path for a cell from src to dst injected at slot `now`. src != dst.
  virtual Path route(NodeId src, NodeId dst, Slot now, Rng& rng) const = 0;

  // Upper bound on hop_count() of any returned path.
  virtual int max_hops() const = 0;

  // ---- Failure awareness ----
  // Borrow the network's failure state: a router with a view attached
  // keeps failed intermediates out of its load-balancing spray and detours
  // around staged next hops that are down, falling back to the oblivious
  // choice only when no healthy alternative exists. With no view attached
  // (the default) routing is exactly the legacy oblivious behavior —
  // including its RNG consumption, so seeded runs stay byte-identical.
  void set_failure_view(const FailureView* view) { failures_ = view; }
  const FailureView* failure_view() const { return failures_; }

 protected:
  // True when there is something to route around; routers gate the
  // failure-aware code path on this so the healthy fast path is unchanged.
  bool avoid_failures() const {
    return failures_ != nullptr && failures_->any_failures();
  }

  const FailureView* failures_ = nullptr;
};

}  // namespace sorn
