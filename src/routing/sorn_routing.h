// The paper's SORN routing scheme (Sec. 4, "Routing").
//
// Intra-clique traffic: 2 hops. The first is a load-balancing hop via the
// first available intra-clique link; the second is the direct intra-clique
// link to the destination.
//
// Inter-clique traffic: 3 hops. First the load-balancing intra-clique hop,
// then the inter-clique link to the destination clique, finally the
// intra-clique link to the destination. The first hop absorbs uneven
// distribution of inter-clique traffic across individual pairs.
#pragma once

#include "routing/router.h"
#include "topo/clique.h"
#include "topo/schedule.h"

namespace sorn {

class SornRouter : public Router {
 public:
  // schedule must be a SORN schedule whose slots are tagged kIntra/kInter
  // consistently with `cliques`; both must outlive the router.
  SornRouter(const CircuitSchedule* schedule, const CliqueAssignment* cliques,
             LbMode mode);

  Path route(NodeId src, NodeId dst, Slot now, Rng& rng) const override;
  int max_hops() const override { return 3; }

  const CliqueAssignment& cliques() const { return *cliques_; }

 private:
  // The load-balancing intermediate inside src's clique (may equal src for
  // singleton cliques, or dst when the first available link points there).
  NodeId pick_intra_intermediate(NodeId src, Slot now, Rng& rng) const;

  // The node in `target` clique reached by the next inter-clique circuit
  // from `from` (kFirstAvailable), or a random member (kRandom).
  NodeId pick_landing_node(NodeId from, CliqueId target, Slot now,
                           Rng& rng) const;

  const CircuitSchedule* schedule_;
  const CliqueAssignment* cliques_;
  LbMode mode_;
};

}  // namespace sorn
