// Routing over a two-level hierarchical SORN schedule (paper Sec. 6).
//
// Path classes (each first hop is the load-balancing intra-pod hop):
//   same pod:            src -> lb -> dst                      (<= 2 hops)
//   same cluster:        src -> lb -> landing(dst pod) -> dst  (<= 3 hops)
//   different cluster:   src -> lb -> v(dst cluster) ->
//                        w(dst pod) -> dst                     (<= 4 hops)
//
// Every consecutive pair is realized by some slot class of the
// hierarchical schedule: intra covers pod pairs, inter covers pod-to-pod
// within a cluster (all index rotations), global covers cluster-to-cluster
// (all position rotations).
#pragma once

#include "routing/router.h"
#include "topo/hierarchy.h"
#include "topo/schedule.h"

namespace sorn {

class HierSornRouter : public Router {
 public:
  HierSornRouter(const CircuitSchedule* schedule, const Hierarchy* hierarchy,
                 LbMode mode);

  Path route(NodeId src, NodeId dst, Slot now, Rng& rng) const override;
  int max_hops() const override { return 4; }

  const Hierarchy& hierarchy() const { return *hier_; }

 private:
  NodeId pick_pod_intermediate(NodeId src, Slot now, Rng& rng) const;
  // Node of `target_pod` reached from `from` by the next kInter circuit
  // (kFirstAvailable) or a random member (kRandom).
  NodeId pick_pod_landing(NodeId from, CliqueId target_pod, Slot now,
                          Rng& rng) const;
  // Node of `target_cluster` reached by the next kGlobal circuit.
  NodeId pick_cluster_landing(NodeId from, CliqueId target_cluster, Slot now,
                              Rng& rng) const;

  const CircuitSchedule* schedule_;
  const Hierarchy* hier_;
  LbMode mode_;
};

}  // namespace sorn
