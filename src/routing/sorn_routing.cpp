#include "routing/sorn_routing.h"

#include "util/assert.h"

namespace sorn {

namespace {

// Bounded rejection for failure-aware random picks (see vlb.cpp).
constexpr int kMaxRandomTries = 64;

}  // namespace

SornRouter::SornRouter(const CircuitSchedule* schedule,
                       const CliqueAssignment* cliques, LbMode mode)
    : schedule_(schedule), cliques_(cliques), mode_(mode) {
  SORN_ASSERT(schedule_ != nullptr && cliques_ != nullptr,
              "SORN router needs a schedule and a clique assignment");
  SORN_ASSERT(schedule_->node_count() == cliques_->node_count(),
              "schedule and clique assignment disagree on node count");
}

NodeId SornRouter::pick_intra_intermediate(NodeId src, Slot now,
                                           Rng& rng) const {
  const CliqueId c = cliques_->clique_of(src);
  if (cliques_->clique_size(c) < 2) return src;  // singleton: no intra hop
  const bool avoid = avoid_failures();
  if (mode_ == LbMode::kFirstAvailable) {
    for (Slot t = now; t < now + schedule_->period(); ++t) {
      if (schedule_->kind_at(t) != SlotKind::kIntra) continue;
      const NodeId peer = schedule_->dst_of(src, t);
      if (peer == src) continue;
      if (avoid && !failures_->usable(src, peer)) continue;
      return peer;
    }
    // No (healthy) intra link: collapse to the direct path rather than
    // spraying into a dead intermediate.
    return src;
  }
  const auto& members = cliques_->members(c);
  if (!avoid) {
    NodeId peer = src;
    do {
      peer = members[static_cast<std::size_t>(
          rng.next_below(members.size()))];
    } while (peer == src);
    return peer;
  }
  for (int tries = 0; tries < kMaxRandomTries; ++tries) {
    const NodeId peer =
        members[static_cast<std::size_t>(rng.next_below(members.size()))];
    if (peer == src) continue;
    if (!failures_->usable(src, peer)) continue;
    return peer;
  }
  return src;  // whole clique looks down: skip the load-balancing hop
}

NodeId SornRouter::pick_landing_node(NodeId from, CliqueId target, Slot now,
                                     Rng& rng) const {
  const bool avoid = avoid_failures();
  if (mode_ == LbMode::kFirstAvailable) {
    if (avoid) {
      // First pass: the next inter circuit whose landing node (and the
      // circuit itself) is up.
      for (Slot t = now; t < now + schedule_->period(); ++t) {
        if (schedule_->kind_at(t) != SlotKind::kInter) continue;
        const NodeId peer = schedule_->dst_of(from, t);
        if (peer == from || cliques_->clique_of(peer) != target) continue;
        if (!failures_->usable(from, peer)) continue;
        return peer;
      }
      // Every inter circuit toward the target clique is down: fall through
      // to the oblivious pick so the cell queues behind the outage (and
      // resumes on heal) instead of asserting.
    }
    for (Slot t = now; t < now + schedule_->period(); ++t) {
      if (schedule_->kind_at(t) != SlotKind::kInter) continue;
      const NodeId peer = schedule_->dst_of(from, t);
      if (peer != from && cliques_->clique_of(peer) == target) return peer;
    }
    SORN_ASSERT(false, "no inter-clique circuit to the target clique");
  }
  const auto& members = cliques_->members(target);
  if (avoid) {
    for (int tries = 0; tries < kMaxRandomTries; ++tries) {
      const NodeId peer =
          members[static_cast<std::size_t>(rng.next_below(members.size()))];
      if (failures_->usable(from, peer)) return peer;
    }
  }
  return members[static_cast<std::size_t>(rng.next_below(members.size()))];
}

Path SornRouter::route(NodeId src, NodeId dst, Slot now, Rng& rng) const {
  SORN_ASSERT(src != dst, "cannot route a node to itself");
  if (cliques_->same_clique(src, dst)) {
    const NodeId mid = pick_intra_intermediate(src, now, rng);
    // Path collapses mid == src, and a direct first hop (mid == dst) is
    // simply taken as the delivery hop.
    return Path::of({src, mid, dst});
  }
  const NodeId lb = pick_intra_intermediate(src, now, rng);
  const NodeId landing =
      pick_landing_node(lb, cliques_->clique_of(dst), now, rng);
  return Path::of({src, lb, landing, dst});
}

}  // namespace sorn
