// Opera-like baseline routing (Mellette et al., NSDI'20).
//
// Opera keeps an expander graph up at all times (u uplinks, a fraction of
// which reconfigure at any instant) and routes latency-sensitive short
// flows over multi-hop expander paths while bulk flows wait for the direct
// circuit of the slow rotation. We reproduce both path classes over a
// static expander snapshot; the slow rotation's latency/throughput is
// captured by the analytical model (analysis/models.h).
#pragma once

#include "routing/path.h"
#include "topo/expander.h"
#include "util/rng.h"

namespace sorn {

class OperaRouter {
 public:
  // max_short_hops: hop budget for short-flow expander paths (4 in the
  // paper's Table 1 configuration).
  OperaRouter(const Expander* expander, int max_short_hops);

  // Expander shortest path for a latency-sensitive flow. Aborts if the
  // destination is farther than the hop budget allows (a correctly
  // provisioned Opera expander has diameter <= max_short_hops).
  Path route_short(NodeId src, NodeId dst) const;

  // Bulk flows take the direct rotation circuit: a single hop.
  static Path route_bulk(NodeId src, NodeId dst);

  int max_short_hops() const { return max_short_hops_; }

 private:
  const Expander* expander_;
  int max_short_hops_;
};

}  // namespace sorn
