// A source-selected path through the logical topology.
//
// Paths are at most a handful of hops in every design the paper studies
// (2 for 1D ORN, 2h for h-D, 3 for SORN inter-clique, 4 for Opera short
// flows), so they are stored inline — cells carry their path with no heap
// allocation in the simulator hot path.
#pragma once

#include <array>
#include <cstdint>

#include "util/types.h"

namespace sorn {

class Path {
 public:
  static constexpr int kMaxNodes = 8;

  Path() = default;

  // Construct from an explicit node sequence (first = src, last = dst).
  // Consecutive duplicates are collapsed so no-op hops never appear.
  static Path of(std::initializer_list<NodeId> nodes);

  void push_back(NodeId node);

  int size() const { return len_; }
  int hop_count() const { return len_ > 0 ? len_ - 1 : 0; }
  NodeId at(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  NodeId src() const { return at(0); }
  NodeId dst() const { return at(len_ - 1); }
  bool contains(NodeId node) const;
  // True if the directed edge (a, b) is one of the path's hops.
  bool uses_edge(NodeId a, NodeId b) const;

  bool operator==(const Path& other) const;

 private:
  std::array<NodeId, kMaxNodes> nodes_{};
  int len_ = 0;
};

}  // namespace sorn
