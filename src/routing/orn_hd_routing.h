// Routing for the h-dimensional optimal ORN of Amir et al. [4].
//
// Nodes are h-digit base-r numbers. A cell is first routed digit-by-digit
// to a random intermediate (h load-balancing hops), then digit-by-digit to
// the destination (h delivery hops): 2h hops total, worst-case throughput
// 1/(2h), intrinsic latency O(h * r) — the Pareto family of Sec. 2.
#pragma once

#include "routing/router.h"

namespace sorn {

class OrnHdRouter : public Router {
 public:
  // n must equal r^h for integer r >= 2 (same condition as
  // ScheduleBuilder::orn_hd).
  OrnHdRouter(NodeId n, int h);

  Path route(NodeId src, NodeId dst, Slot now, Rng& rng) const override;
  int max_hops() const override { return 2 * h_; }

  NodeId radix() const { return r_; }
  int dims() const { return h_; }

  // Replace digit d of `node` with `value`.
  NodeId with_digit(NodeId node, int d, NodeId value) const;
  NodeId digit(NodeId node, int d) const;

 private:
  // Append the digit-fixing hops from `from` towards `to`.
  void append_digit_hops(Path& path, NodeId from, NodeId to) const;

  NodeId n_;
  NodeId r_;
  int h_;
};

}  // namespace sorn
