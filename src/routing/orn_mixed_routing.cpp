#include "routing/orn_mixed_routing.h"

#include "util/assert.h"

namespace sorn {

OrnMixedRouter::OrnMixedRouter(NodeId n, std::vector<NodeId> radices)
    : n_(n), radices_(std::move(radices)) {
  SORN_ASSERT(!radices_.empty(), "need at least one radix");
  SORN_ASSERT(2 * static_cast<int>(radices_.size()) <= Path::kMaxNodes - 1,
              "too many dimensions for the inline path budget");
  strides_.resize(radices_.size());
  std::int64_t stride = 1;
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    SORN_ASSERT(radices_[d] >= 2, "each radix must be at least 2");
    strides_[d] = static_cast<NodeId>(stride);
    stride *= radices_[d];
  }
  SORN_ASSERT(stride == n_, "radices must multiply to n");
}

NodeId OrnMixedRouter::digit(NodeId node, int d) const {
  return (node / strides_[static_cast<std::size_t>(d)]) %
         radices_[static_cast<std::size_t>(d)];
}

NodeId OrnMixedRouter::with_digit(NodeId node, int d, NodeId value) const {
  return node +
         (value - digit(node, d)) * strides_[static_cast<std::size_t>(d)];
}

void OrnMixedRouter::append_digit_hops(Path& path, NodeId from,
                                       NodeId to) const {
  NodeId cur = from;
  for (int d = 0; d < dims(); ++d) {
    cur = with_digit(cur, d, digit(to, d));
    path.push_back(cur);
  }
}

Path OrnMixedRouter::route(NodeId src, NodeId dst, Slot /*now*/,
                           Rng& rng) const {
  SORN_ASSERT(src != dst, "cannot route a node to itself");
  const auto mid =
      static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n_)));
  Path path;
  path.push_back(src);
  append_digit_hops(path, src, mid);
  append_digit_hops(path, mid, dst);
  return path;
}

}  // namespace sorn
