#include "routing/orn_hd_routing.h"

#include <cmath>

#include "util/assert.h"

namespace sorn {

OrnHdRouter::OrnHdRouter(NodeId n, int h) : n_(n), h_(h) {
  SORN_ASSERT(h >= 1, "dimension must be at least 1");
  r_ = static_cast<NodeId>(std::llround(
      std::pow(static_cast<double>(n), 1.0 / static_cast<double>(h))));
  std::int64_t check = 1;
  for (int d = 0; d < h; ++d) check *= r_;
  SORN_ASSERT(check == n_, "OrnHdRouter requires n to be a perfect h-th power");
  SORN_ASSERT(r_ >= 2, "each dimension must have at least two coordinates");
}

NodeId OrnHdRouter::digit(NodeId node, int d) const {
  NodeId v = node;
  for (int i = 0; i < d; ++i) v /= r_;
  return v % r_;
}

NodeId OrnHdRouter::with_digit(NodeId node, int d, NodeId value) const {
  NodeId stride = 1;
  for (int i = 0; i < d; ++i) stride *= r_;
  return node + (value - digit(node, d)) * stride;
}

void OrnHdRouter::append_digit_hops(Path& path, NodeId from, NodeId to) const {
  NodeId cur = from;
  for (int d = 0; d < h_; ++d) {
    cur = with_digit(cur, d, digit(to, d));
    path.push_back(cur);  // no-op hops collapse inside Path
  }
}

Path OrnHdRouter::route(NodeId src, NodeId dst, Slot /*now*/, Rng& rng) const {
  SORN_ASSERT(src != dst, "cannot route a node to itself");
  const auto mid =
      static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n_)));
  Path path;
  path.push_back(src);
  append_digit_hops(path, src, mid);
  append_digit_hops(path, mid, dst);
  return path;
}

}  // namespace sorn
