// Single-hop direct routing: every cell waits for the direct circuit.
//
// Maximally bandwidth-efficient (no bandwidth tax) and maximally latent
// (full schedule recurrence per cell) — the bulk end of every design's
// latency-throughput spectrum (RotorNet/Opera bulk, and SORN's "tune the
// number of indirect hops" direction from paper Sec. 6).
#pragma once

#include "routing/router.h"

namespace sorn {

class DirectRouter : public Router {
 public:
  Path route(NodeId src, NodeId dst, Slot /*now*/, Rng& /*rng*/) const override {
    return Path::of({src, dst});
  }
  int max_hops() const override { return 1; }
};

}  // namespace sorn
