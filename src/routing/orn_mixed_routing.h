// Routing for the mixed-radix optimal ORN (Wilson et al. [35]).
//
// The generalization of OrnHdRouter to arbitrary N: nodes are mixed-radix
// numbers over radices (r_0, ..., r_{h-1}); a cell is routed digit-by-digit
// to a random intermediate and then digit-by-digit to the destination
// (up to 2h hops).
#pragma once

#include <vector>

#include "routing/router.h"

namespace sorn {

class OrnMixedRouter : public Router {
 public:
  // Radices must multiply to n, each >= 2, and 2 * radices.size() must fit
  // the Path hop budget.
  OrnMixedRouter(NodeId n, std::vector<NodeId> radices);

  Path route(NodeId src, NodeId dst, Slot now, Rng& rng) const override;
  int max_hops() const override { return 2 * static_cast<int>(radices_.size()); }

  int dims() const { return static_cast<int>(radices_.size()); }
  NodeId radix(int d) const { return radices_[static_cast<std::size_t>(d)]; }
  NodeId digit(NodeId node, int d) const;
  NodeId with_digit(NodeId node, int d, NodeId value) const;

 private:
  void append_digit_hops(Path& path, NodeId from, NodeId to) const;

  NodeId n_;
  std::vector<NodeId> radices_;
  std::vector<NodeId> strides_;
};

}  // namespace sorn
