#include "routing/path.h"

#include "util/assert.h"

namespace sorn {

Path Path::of(std::initializer_list<NodeId> nodes) {
  Path p;
  for (const NodeId n : nodes) p.push_back(n);
  return p;
}

void Path::push_back(NodeId node) {
  if (len_ > 0 && nodes_[static_cast<std::size_t>(len_ - 1)] == node) return;
  SORN_ASSERT(len_ < kMaxNodes, "path exceeds the inline hop budget");
  nodes_[static_cast<std::size_t>(len_)] = node;
  ++len_;
}

bool Path::contains(NodeId node) const {
  for (int i = 0; i < len_; ++i)
    if (at(i) == node) return true;
  return false;
}

bool Path::uses_edge(NodeId a, NodeId b) const {
  for (int i = 0; i + 1 < len_; ++i)
    if (at(i) == a && at(i + 1) == b) return true;
  return false;
}

bool Path::operator==(const Path& other) const {
  if (len_ != other.len_) return false;
  for (int i = 0; i < len_; ++i)
    if (at(i) != other.at(i)) return false;
  return true;
}

}  // namespace sorn
