#include "routing/opera_routing.h"

#include "util/assert.h"

namespace sorn {

OperaRouter::OperaRouter(const Expander* expander, int max_short_hops)
    : expander_(expander), max_short_hops_(max_short_hops) {
  SORN_ASSERT(expander_ != nullptr, "Opera router needs an expander");
  SORN_ASSERT(max_short_hops_ >= 1, "hop budget must be positive");
}

Path OperaRouter::route_short(NodeId src, NodeId dst) const {
  SORN_ASSERT(src != dst, "cannot route a node to itself");
  const auto nodes = expander_->shortest_path(src, dst);
  SORN_ASSERT(!nodes.empty(), "destination unreachable in expander");
  SORN_ASSERT(static_cast<int>(nodes.size()) - 1 <= max_short_hops_,
              "expander diameter exceeds the short-flow hop budget");
  Path path;
  for (const NodeId n : nodes) path.push_back(n);
  return path;
}

Path OperaRouter::route_bulk(NodeId src, NodeId dst) {
  return Path::of({src, dst});
}

}  // namespace sorn
