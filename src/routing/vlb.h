// Two-hop Valiant load balancing over a flat oblivious schedule
// (Sirius / RotorNet / Shoal style, paper Sec. 2).
#pragma once

#include "routing/router.h"
#include "topo/schedule.h"

namespace sorn {

class VlbRouter : public Router {
 public:
  // `schedule` must outlive the router. With kFirstAvailable the
  // intermediate is the node src connects to in the next slot; with
  // kRandom it is uniform over nodes other than src.
  VlbRouter(const CircuitSchedule* schedule, LbMode mode);

  // Direct single-hop routing (no load balancing); usable when traffic is
  // known uniform. Provided for ablations.
  static Path direct(NodeId src, NodeId dst);

  Path route(NodeId src, NodeId dst, Slot now, Rng& rng) const override;
  int max_hops() const override { return 2; }

 private:
  const CircuitSchedule* schedule_;
  LbMode mode_;
};

}  // namespace sorn
