// Shared identifier types.
#pragma once

#include <cstdint>

namespace sorn {

// Index of a network node (ToR switch or end-host) in [0, N).
using NodeId = std::int32_t;

// Index of a clique (macro-scale node group) in [0, Nc).
using CliqueId = std::int32_t;

// Sentinel for "no node" / idle circuit.
constexpr NodeId kNoNode = -1;

}  // namespace sorn
