#include "util/rusage.h"

#include <sys/resource.h>

namespace sorn {

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  const auto raw = static_cast<std::uint64_t>(usage.ru_maxrss);
#if defined(__APPLE__)
  return raw;  // macOS reports ru_maxrss in bytes.
#else
  return raw * 1024;  // Linux reports ru_maxrss in kilobytes.
#endif
}

double peak_rss_mb() {
  return static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
}

}  // namespace sorn
