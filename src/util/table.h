// Aligned ASCII table printing for bench harness output.
//
// Every bench binary prints the paper's table/figure rows through this so
// outputs are uniform and diffable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace sorn {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Row cells are pre-formatted strings; shorter rows are padded.
  void add_row(std::vector<std::string> row);

  // Render to the given stream (stdout by default) with a header rule.
  void print(std::FILE* out = stdout) const;

  // Render as CSV (no alignment) for machine consumption.
  std::string to_csv() const;

  // Render as a JSON array of objects, one per row, keyed by header —
  // cells stay the pre-formatted strings they were added as. Lets bench
  // tables be exported machine-readably without reformatting.
  std::string to_json() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sorn
