// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256++ (Blackman & Vigna): fast, high-quality, and — unlike
// std::mt19937 — identical output across standard-library implementations,
// so experiment results are reproducible bit-for-bit from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace sorn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform over all 64-bit values.
  std::uint64_t next_u64();

  // Uniform integer in [0, bound). bound must be > 0. Uses rejection
  // sampling, so there is no modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform double in [0, 1).
  double next_double();

  // Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  // Standard normal via Box-Muller.
  double next_normal();

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent stream (for per-node or per-module RNGs).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace sorn
