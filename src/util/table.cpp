#include "util/table.h"

#include <cstdarg>
#include <algorithm>

namespace sorn {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%c %-*s", c == 0 ? '|' : '|',
                   static_cast<int>(widths[c]), row[c].c_str());
      std::fputc(' ', out);
    }
    std::fputs("|\n", out);
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    std::fputc('|', out);
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
  }
  std::fputs("|\n", out);
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::to_csv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string TablePrinter::to_json() const {
  // Local escaping keeps sorn_util free of a dependency on sorn_obs.
  auto append_string = [](std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  };
  std::string out = "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r == 0 ? "\n" : ",\n";
    out += "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c != 0) out += ", ";
      append_string(out, headers_[c]);
      out += ": ";
      append_string(out, rows_[r][c]);
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string buf(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(buf.data(), buf.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return buf;
}

}  // namespace sorn
