// Slab/arena allocators for per-slot churn (DESIGN.md §11).
//
// The simulator's steady state allocates and frees the same small objects
// millions of times per run: queued cells enter and leave VOQ FIFOs every
// slot, and flow records live for one flow's duration. General-purpose
// heap allocation pays malloc metadata, lock traffic, and fragmentation
// for every one of them. These allocators recycle storage instead:
//
//  - ChunkPool<T, kChunk>: a pool of fixed-size chunks (arrays of kChunk
//    T slots). Freed chunks go on an intrusive free list and are reused;
//    storage is only returned to the OS when the pool is destroyed, so
//    steady-state operation performs no heap traffic at all.
//  - PooledFifo<T, kChunk>: a FIFO queue backed by a chain of pool
//    chunks. Drop-in for the std::deque<Cell> per-VOQ storage; chunks
//    return to the pool as the head drains, so a burst's storage is
//    recycled by the next burst. The FIFO does not own chunk storage —
//    destroying a non-empty FIFO leaks nothing because the pool owns and
//    frees every chunk it ever allocated.
//  - SlotArena<T>: a stable-index arena with a free list. allocate()
//    returns a reusable slot index whose T object is *recycled, not
//    reconstructed* — a released FlowRecord keeps its delivered-bitmap
//    capacity, so the next flow's bitmap assign() is heap-free once the
//    arena is warm. Indices stay valid until release(); references are
//    stable across allocate() (deque storage).
//
// Thread contract: none of these are thread-safe. VoqSet keeps one
// ChunkPool per node so the parallel sweep's shard ownership (disjoint
// node ranges, sim/parallel.h) extends to the allocator: a node's pool is
// only touched by the shard that owns the node (pops during the sweep)
// or by the coordinating thread (pushes during the merge), never both at
// once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace sorn {

template <typename T, std::size_t kChunk>
class ChunkPool {
 public:
  struct Chunk {
    T items[kChunk];
    Chunk* next = nullptr;
  };

  ChunkPool() = default;
  ChunkPool(ChunkPool&&) noexcept = default;
  ChunkPool& operator=(ChunkPool&&) noexcept = default;

  Chunk* acquire() {
    if (free_ != nullptr) {
      Chunk* c = free_;
      free_ = c->next;
      c->next = nullptr;
      return c;
    }
    owned_.push_back(std::make_unique<Chunk>());
    return owned_.back().get();
  }

  void release(Chunk* c) {
    c->next = free_;
    free_ = c;
  }

  // Chunks ever allocated (live + free-listed); the pool's footprint.
  std::uint64_t chunks_allocated() const { return owned_.size(); }
  std::uint64_t free_chunks() const {
    std::uint64_t n = 0;
    for (const Chunk* c = free_; c != nullptr; c = c->next) ++n;
    return n;
  }
  std::uint64_t memory_bytes() const {
    return owned_.size() * sizeof(Chunk) +
           owned_.capacity() * sizeof(std::unique_ptr<Chunk>);
  }

 private:
  std::vector<std::unique_ptr<Chunk>> owned_;
  Chunk* free_ = nullptr;
};

template <typename T, std::size_t kChunk>
class PooledFifo {
 public:
  using Pool = ChunkPool<T, kChunk>;
  using Chunk = typename Pool::Chunk;

  PooledFifo() = default;
  PooledFifo(PooledFifo&& o) noexcept
      : head_(std::exchange(o.head_, nullptr)),
        tail_(std::exchange(o.tail_, nullptr)),
        head_idx_(std::exchange(o.head_idx_, 0)),
        tail_idx_(std::exchange(o.tail_idx_, 0)),
        size_(std::exchange(o.size_, 0)) {}
  PooledFifo& operator=(PooledFifo&& o) noexcept {
    head_ = std::exchange(o.head_, nullptr);
    tail_ = std::exchange(o.tail_, nullptr);
    head_idx_ = std::exchange(o.head_idx_, 0);
    tail_idx_ = std::exchange(o.tail_idx_, 0);
    size_ = std::exchange(o.size_, 0);
    return *this;
  }
  // No destructor work: chunk storage belongs to the pool.

  void push_back(Pool& pool, const T& v) {
    if (tail_ == nullptr) {
      head_ = tail_ = pool.acquire();
      head_idx_ = tail_idx_ = 0;
    } else if (tail_idx_ == kChunk) {
      Chunk* c = pool.acquire();
      tail_->next = c;
      tail_ = c;
      tail_idx_ = 0;
    }
    tail_->items[tail_idx_++] = v;
    ++size_;
  }

  const T& front() const { return head_->items[head_idx_]; }
  T& front() { return head_->items[head_idx_]; }

  void pop_front(Pool& pool) {
    SORN_ASSERT(size_ > 0, "pop from empty PooledFifo");
    ++head_idx_;
    --size_;
    if (size_ == 0) {
      // Fully drained: all earlier chunks were already released, so the
      // head chunk is the tail chunk.
      pool.release(head_);
      head_ = tail_ = nullptr;
      head_idx_ = tail_idx_ = 0;
    } else if (head_idx_ == kChunk) {
      Chunk* c = head_;
      head_ = head_->next;
      head_idx_ = 0;
      pool.release(c);
    }
  }

  // Return every chunk to the pool and empty the FIFO.
  void clear(Pool& pool) {
    for (Chunk* c = head_; c != nullptr;) {
      Chunk* next = c->next;
      pool.release(c);
      c = next;
    }
    head_ = tail_ = nullptr;
    head_idx_ = tail_idx_ = 0;
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  Chunk* head_ = nullptr;
  Chunk* tail_ = nullptr;
  std::size_t head_idx_ = 0;
  std::size_t tail_idx_ = 0;
  std::size_t size_ = 0;
};

template <typename T>
class SlotArena {
 public:
  std::uint32_t allocate() {
    if (!free_.empty()) {
      const std::uint32_t i = free_.back();
      free_.pop_back();
      return i;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  // The slot's object is NOT destroyed — it is recycled by the next
  // allocate(), keeping whatever heap capacity it grew. Callers must
  // fully re-initialize recycled objects.
  void release(std::uint32_t i) { free_.push_back(i); }

  T& operator[](std::uint32_t i) { return slots_[i]; }
  const T& operator[](std::uint32_t i) const { return slots_[i]; }

  // Slots currently handed out.
  std::size_t live() const { return slots_.size() - free_.size(); }
  // Slots ever created (live + recyclable).
  std::size_t capacity() const { return slots_.size(); }

  std::uint64_t memory_bytes() const {
    return slots_.size() * sizeof(T) +
           free_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::deque<T> slots_;  // deque: references stable across allocate()
  std::vector<std::uint32_t> free_;
};

}  // namespace sorn
