// Strict `--flag value` CLI parsing, shared by the bench executables and
// sorn_tool.
//
// Before this helper each binary hand-rolled atoi/atof loops that silently
// accepted garbage ("--slots 20k" ran with 20 slots; unknown flags were
// ignored). ArgParser validates every value as a whole token,
// range-checks it, and rejects unknown flags, exiting with status 2 (the
// established usage-error code) and a message naming the offending flag.
//
// Usage:
//   sorn::ArgParser args(argc, argv);            // or (argc, argv, first)
//   const std::string json = args.get_string("--json", "");
//   const long slots = args.get_long("--slots", 20000, 1);
//   const double floor = args.get_double("--min-speedup", 0.0, 0.0);
//   const std::vector<int> threads = args.get_int_list("--threads", {1, 2});
//   const bool weighted = args.get_flag("--weighted");
//   args.finish();  // rejects anything not consumed above
//
// Header-only; the consumers are leaf executables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

namespace sorn {

class ArgParser {
 public:
  // Arguments from argv[first..); first defaults to 1 (skip the program
  // name). Subcommand-style tools pass first = 2.
  ArgParser(int argc, char** argv, int first = 1)
      : prog_(argc > 0 ? argv[0] : "bench") {
    for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
    used_.assign(args_.size(), false);
  }

  // `--flag value`; empty-string fallback means "not given" by convention.
  std::string get_string(const char* flag, std::string fallback) {
    const int i = find(flag);
    if (i < 0) return fallback;
    return value_of(i);
  }

  // Valueless boolean flag: present -> true.
  bool get_flag(const char* flag) { return find(flag) >= 0; }

  // True when the flag was given (and consumes nothing extra); pairs with
  // a get_* call for "was this explicitly set" logic.
  bool has(const char* flag) const {
    for (std::size_t i = 0; i < args_.size(); ++i)
      if (args_[i] == flag) return true;
    return false;
  }

  long get_long(const char* flag, long fallback,
                long lo = std::numeric_limits<long>::min(),
                long hi = std::numeric_limits<long>::max()) {
    const int i = find(flag);
    if (i < 0) return fallback;
    const std::string v = value_of(i);
    char* end = nullptr;
    const long parsed = std::strtol(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
      die(flag, v, "an integer");
    if (parsed < lo || parsed > hi) die_range(flag, v, lo, hi);
    return parsed;
  }

  double get_double(const char* flag, double fallback,
                    double lo = -std::numeric_limits<double>::infinity(),
                    double hi = std::numeric_limits<double>::infinity()) {
    const int i = find(flag);
    if (i < 0) return fallback;
    const std::string v = value_of(i);
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0') die(flag, v, "a number");
    if (parsed < lo || parsed > hi) {
      std::fprintf(stderr, "%s: %s must be in [%g, %g] (got %s)\n",
                   prog_.c_str(), flag, lo, hi, v.c_str());
      std::exit(2);
    }
    return parsed;
  }

  // Comma-separated integers, each range-checked.
  std::vector<int> get_int_list(const char* flag, std::vector<int> fallback,
                                long lo = std::numeric_limits<int>::min(),
                                long hi = std::numeric_limits<int>::max()) {
    const int i = find(flag);
    if (i < 0) return fallback;
    const std::string v = value_of(i);
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos <= v.size()) {
      std::size_t comma = v.find(',', pos);
      if (comma == std::string::npos) comma = v.size();
      const std::string item = v.substr(pos, comma - pos);
      char* end = nullptr;
      const long parsed = std::strtol(item.c_str(), &end, 10);
      if (item.empty() || end == item.c_str() || *end != '\0')
        die(flag, v, "a comma-separated integer list");
      if (parsed < lo || parsed > hi) die_range(flag, item, lo, hi);
      out.push_back(static_cast<int>(parsed));
      pos = comma + 1;
    }
    return out;
  }

  // Call after all getters: any argument not consumed is an unknown flag
  // (or a stray value) and aborts with a usage error.
  void finish() {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (used_[i]) continue;
      std::fprintf(stderr, "%s: unknown or misplaced argument '%s'\n",
                   prog_.c_str(), args_[i].c_str());
      std::exit(2);
    }
  }

 private:
  int find(const char* flag) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (used_[i] || args_[i] != flag) continue;
      used_[i] = true;
      return static_cast<int>(i);
    }
    return -1;
  }

  std::string value_of(int flag_index) {
    const auto v = static_cast<std::size_t>(flag_index) + 1;
    if (v >= args_.size() || used_[v]) {
      std::fprintf(stderr, "%s: missing value for %s\n", prog_.c_str(),
                   args_[static_cast<std::size_t>(flag_index)].c_str());
      std::exit(2);
    }
    used_[v] = true;
    return args_[v];
  }

  [[noreturn]] void die(const char* flag, const std::string& got,
                        const char* wanted) {
    std::fprintf(stderr, "%s: %s expects %s (got '%s')\n", prog_.c_str(),
                 flag, wanted, got.c_str());
    std::exit(2);
  }

  [[noreturn]] void die_range(const char* flag, const std::string& got,
                              long lo, long hi) {
    std::fprintf(stderr, "%s: %s must be in [%ld, %ld] (got %s)\n",
                 prog_.c_str(), flag, lo, hi, got.c_str());
    std::exit(2);
  }

  std::string prog_;
  std::vector<std::string> args_;
  std::vector<bool> used_;
};

}  // namespace sorn
