// Streaming and batch statistics for experiment metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sorn {

// Welford's online mean/variance plus min/max; O(1) memory.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // Sample variance; 0 when fewer than 2 samples.
  double stddev() const;
  double min() const;       // +inf when empty.
  double max() const;       // -inf when empty.
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Batch percentile computation. Keeps all samples; suited to FCT/latency
// distributions of bounded experiment size.
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }

  // Linear-interpolated percentile, p in [0, 100]. Empty -> 0.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;

  // The samples in ascending order (sorts lazily, like percentile()).
  const std::vector<double>& sorted() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Fixed-bin histogram over [lo, hi); values outside are clamped to the
// first/last bin so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);
  std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace sorn
