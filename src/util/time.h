// Simulation time representation.
//
// All network timing is kept in integer picoseconds to avoid floating-point
// drift when accumulating per-slot delays over long runs. A slot-synchronous
// network additionally counts whole slots (Slot).
#pragma once

#include <cstdint>

namespace sorn {

// Absolute or relative simulated time in picoseconds.
using Picoseconds = std::int64_t;

// Index of a time slot in a slot-synchronous schedule.
using Slot = std::int64_t;

constexpr Picoseconds operator""_ns(unsigned long long v) {
  return static_cast<Picoseconds>(v) * 1000;
}
constexpr Picoseconds operator""_us(unsigned long long v) {
  return static_cast<Picoseconds>(v) * 1000 * 1000;
}
constexpr Picoseconds operator""_ms(unsigned long long v) {
  return static_cast<Picoseconds>(v) * 1000 * 1000 * 1000;
}

constexpr double to_ns(Picoseconds t) { return static_cast<double>(t) / 1e3; }
constexpr double to_us(Picoseconds t) { return static_cast<double>(t) / 1e6; }
constexpr double to_ms(Picoseconds t) { return static_cast<double>(t) / 1e9; }

}  // namespace sorn
