#include "util/rng.h"

#include <cmath>

#include "util/assert.h"

namespace sorn {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 — used only to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SORN_ASSERT(bound > 0, "next_below requires bound > 0");
  // Lemire-style rejection: retry while in the biased tail.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double mean) {
  SORN_ASSERT(mean > 0.0, "exponential mean must be positive");
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::next_normal() {
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  SORN_ASSERT(lo <= hi, "next_in_range requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace sorn
