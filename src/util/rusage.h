// Process resource probes shared by benches and the profiler.
//
// getrusage(RUSAGE_SELF).ru_maxrss is a process-wide high-water mark, but
// its unit is platform-dependent: Linux reports kilobytes, macOS bytes.
// This helper normalizes the unit in exactly one place so every consumer
// (bench_large_n's RSS ceiling gate, MemoryAccountant's periodic RSS
// samples) agrees on bytes.
#pragma once

#include <cstdint>

namespace sorn {

// Peak resident set size of the calling process, in bytes. Monotonically
// non-decreasing over the process lifetime (it is a high-water mark, not
// an instantaneous gauge). Returns 0 if the probe is unavailable.
std::uint64_t peak_rss_bytes();

// Convenience: peak RSS in MiB (bytes / 2^20) for human-facing gates.
double peak_rss_mb();

}  // namespace sorn
