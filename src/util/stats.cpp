#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.h"

namespace sorn {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double RunningStats::max() const {
  return n_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

double Percentiles::percentile(double p) const {
  SORN_ASSERT(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

const std::vector<double>& Percentiles::sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return samples_;
}

double Percentiles::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SORN_ASSERT(hi > lo, "histogram range must be nonempty");
  SORN_ASSERT(bins > 0, "histogram must have at least one bin");
}

void Histogram::add(double x, std::uint64_t weight) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

}  // namespace sorn
