// Checked assertions that stay on in release builds.
//
// Simulator correctness depends on invariants (perfect matchings, conserved
// cells) that are cheap to verify relative to the cost of silently producing
// wrong experiment numbers, so SORN_ASSERT is always compiled in.
#pragma once

#include <cstdio>
#include <cstdlib>

#define SORN_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SORN_ASSERT failed at %s:%d: %s\n  %s\n",        \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (false)
