// Builders for the circuit-schedule families studied in the paper.
//
//  - round_robin:  the flat 1D oblivious schedule of Fig. 1 (Sirius/Shoal).
//  - orn_hd:       the h-dimensional optimal ORN schedule of [4]: nodes are
//                  h-digit base-r numbers, each phase round-robins one digit.
//  - sorn:         the paper's semi-oblivious clique schedule (Sec. 4):
//                  intra-clique round robins and inter-clique round robins
//                  interleaved in the exact ratio q : 1 with q rational.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/bvn.h"
#include "topo/clique.h"
#include "topo/hierarchy.h"
#include "topo/schedule.h"

namespace sorn {

// Oversubscription ratio q as an exact rational num/den >= 1 so that slot
// shares are realized exactly in a finite schedule period.
struct Rational {
  std::int64_t num = 1;
  std::int64_t den = 1;

  double value() const {
    return static_cast<double>(num) / static_cast<double>(den);
  }

  // Closest rational to v with denominator at most max_den (Stern-Brocot
  // walk). Used to realize the analytic optimum q* = 2/(1-x) in a schedule
  // of manageable period.
  static Rational approximate(double v, std::int64_t max_den);
};

class ScheduleBuilder {
 public:
  // Flat round-robin over n nodes: period n-1, slot k applies the cyclic
  // shift by k+1. Every circuit appears exactly once per period.
  static CircuitSchedule round_robin(NodeId n);

  // h-dimensional optimal ORN schedule. Requires n == r^h for integer r.
  // Period h*(r-1); phase d round-robins digit d.
  static CircuitSchedule orn_hd(NodeId n, int h);

  // Mixed-radix optimal ORN (Wilson et al. [35]: "Extending Optimal
  // Oblivious Reconfigurable Networks to all N"): nodes are mixed-radix
  // numbers over the given radices (product must equal n, each radix
  // >= 2); phase d round-robins digit d. Period sum_d (r_d - 1).
  static CircuitSchedule orn_mixed(NodeId n,
                                   const std::vector<NodeId>& radices);

  // RotorNet-style slow rotation: the flat round robin with every
  // matching held for `dwell` consecutive slots (e.g. 90 us slots vs the
  // fabric's 100 ns cells).
  //
  // Note: the union of several *cyclic shifts* is a circulant graph with
  // poor expansion — fine for RotorNet's one-at-a-time direct/VLB use,
  // but not for Opera's multi-hop short-flow routing. Use rotor_random
  // for an Opera-style fabric.
  static CircuitSchedule rotor(NodeId n, Slot dwell);

  // Opera-style slow rotation: a proper 1-factorization of the complete
  // graph (circle method), randomly relabeled and with rounds in random
  // order, each round held for `dwell` slots. Every ordered pair appears
  // (bulk flows eventually get a direct circuit), and the union of the
  // lanes' active rounds behaves like a random regular graph — the
  // expander Opera routes short flows over. n must be even.
  static CircuitSchedule rotor_random(NodeId n, Slot dwell,
                                      std::uint64_t seed);

  // SORN clique schedule for the given assignment and oversubscription
  // ratio q (intra : inter slot share). Requires equal-sized cliques when
  // both intra and inter slots are present. The schedule period is the
  // smallest that realizes q exactly and completes both round-robin cycles;
  // aborts if that exceeds max_period (pick a coarser q via
  // Rational::approximate).
  //
  // Degenerate cases: one clique -> pure intra round robin; cliques of
  // size 1 -> pure inter (clique-level) round robin.
  static CircuitSchedule sorn(const CliqueAssignment& cliques, Rational q,
                              Slot max_period = 1 << 22);

  // Weighted-inter SORN schedule (paper Sec. 5, "Expressivity"): the
  // inter-clique slots are apportioned to clique pairs in proportion to
  // `clique_weights` (an Nc x Nc demand aggregate; diagonal ignored) via a
  // Birkhoff-von-Neumann decomposition, instead of the uniform clique-level
  // round robin of sorn(). Encodes gravity models and other non-uniform
  // aggregate patterns.
  struct WeightedOptions {
    // Demand share of the mix; the remaining (1 - alpha) is a uniform
    // floor that keeps every clique pair connected (required for 3-hop
    // routing and the fixed-neighbor-superset property).
    double demand_alpha = 0.7;
    // Quantization length for BvN coefficients: one period's inter slots
    // follow an emission list of ~this many entries per rotation.
    int emission_slots = 32;
    BvnOptions bvn;
  };

  static CircuitSchedule sorn_weighted(const CliqueAssignment& cliques,
                                       Rational q,
                                       const std::vector<double>& clique_weights,
                                       const WeightedOptions& options,
                                       Slot max_period = 1 << 22);
  static CircuitSchedule sorn_weighted(
      const CliqueAssignment& cliques, Rational q,
      const std::vector<double>& clique_weights) {
    return sorn_weighted(cliques, q, clique_weights, WeightedOptions());
  }

  // Two-level hierarchical SORN (paper Sec. 6): three slot classes —
  // intra-pod round robins (kIntra), pod-level round robins within each
  // cluster (kInter), and cluster-level round robins (kGlobal) — in the
  // exact integer ratio `shares`. A share must be 0 iff its level has no
  // circuits (pod size 1 / one pod per cluster / one cluster).
  struct HierShares {
    std::int64_t intra = 2;
    std::int64_t inter = 1;
    std::int64_t global = 1;
  };

  static CircuitSchedule sorn_hierarchical(const Hierarchy& hierarchy,
                                           HierShares shares,
                                           Slot max_period = 1 << 22);
};

}  // namespace sorn
