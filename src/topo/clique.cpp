#include "topo/clique.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

CliqueAssignment::CliqueAssignment(std::vector<CliqueId> clique_of)
    : clique_of_(std::move(clique_of)) {
  SORN_ASSERT(!clique_of_.empty(), "assignment must cover at least one node");
  const CliqueId nc = 1 + *std::max_element(clique_of_.begin(), clique_of_.end());
  members_.resize(static_cast<std::size_t>(nc));
  index_in_clique_.resize(clique_of_.size());
  for (NodeId i = 0; i < node_count(); ++i) {
    const CliqueId c = clique_of_[static_cast<std::size_t>(i)];
    SORN_ASSERT(c >= 0, "clique ids must be nonnegative");
    index_in_clique_[static_cast<std::size_t>(i)] =
        static_cast<NodeId>(members_[static_cast<std::size_t>(c)].size());
    members_[static_cast<std::size_t>(c)].push_back(i);
  }
  for (const auto& m : members_)
    SORN_ASSERT(!m.empty(), "clique ids must be dense (no empty cliques)");
  contiguous_equal_ = node_count() % nc == 0;
  if (contiguous_equal_) {
    const NodeId size = node_count() / nc;
    for (NodeId i = 0; i < node_count(); ++i) {
      if (clique_of_[static_cast<std::size_t>(i)] !=
          static_cast<CliqueId>(i / size)) {
        contiguous_equal_ = false;
        break;
      }
    }
  }
}

CliqueAssignment CliqueAssignment::contiguous(NodeId n, CliqueId nc) {
  SORN_ASSERT(nc > 0 && n > 0, "need positive node and clique counts");
  SORN_ASSERT(n % nc == 0, "contiguous() requires n divisible by nc");
  const NodeId size = n / nc;
  std::vector<CliqueId> map(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i)
    map[static_cast<std::size_t>(i)] = static_cast<CliqueId>(i / size);
  return CliqueAssignment(std::move(map));
}

CliqueAssignment CliqueAssignment::flat(NodeId n) {
  std::vector<CliqueId> map(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i)
    map[static_cast<std::size_t>(i)] = static_cast<CliqueId>(i);
  return CliqueAssignment(std::move(map));
}

bool CliqueAssignment::equal_sized() const {
  for (CliqueId c = 1; c < clique_count(); ++c)
    if (clique_size(c) != clique_size(0)) return false;
  return true;
}

PaddedAssignment CliqueAssignment::padded_to_equal() const {
  NodeId max_size = 0;
  for (CliqueId c = 0; c < clique_count(); ++c)
    max_size = std::max(max_size, clique_size(c));
  PaddedAssignment padded;
  padded.real_nodes = node_count();
  padded.clique_of = clique_of_;
  for (CliqueId c = 0; c < clique_count(); ++c)
    for (NodeId g = clique_size(c); g < max_size; ++g)
      padded.clique_of.push_back(c);
  padded.padded_nodes = static_cast<NodeId>(padded.clique_of.size());
  return padded;
}

}  // namespace sorn
