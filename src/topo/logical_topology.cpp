#include "topo/logical_topology.h"

#include "util/assert.h"

namespace sorn {

LogicalTopology::LogicalTopology(const CircuitSchedule& schedule)
    : n_(schedule.node_count()),
      frac_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), 0.0) {
  const double per_slot = 1.0 / static_cast<double>(schedule.period());
  for (Slot t = 0; t < schedule.period(); ++t) {
    const Matching& m = schedule.matching_at(t);
    for (NodeId i = 0; i < n_; ++i) {
      if (m.is_idle(i)) continue;
      frac_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
            static_cast<std::size_t>(m.dst_of(i))] += per_slot;
    }
  }
}

NodeId LogicalTopology::degree(NodeId node) const {
  NodeId deg = 0;
  for (NodeId j = 0; j < n_; ++j)
    if (j != node && edge_fraction(node, j) > 0.0) ++deg;
  return deg;
}

double LogicalTopology::intra_fraction(NodeId node,
                                       const CliqueAssignment& cliques) const {
  double total = 0.0;
  for (NodeId j = 0; j < n_; ++j)
    if (j != node && cliques.same_clique(node, j))
      total += edge_fraction(node, j);
  return total;
}

double LogicalTopology::inter_fraction(NodeId node,
                                       const CliqueAssignment& cliques) const {
  double total = 0.0;
  for (NodeId j = 0; j < n_; ++j)
    if (!cliques.same_clique(node, j)) total += edge_fraction(node, j);
  return total;
}

double LogicalTopology::clique_bandwidth(CliqueId a, CliqueId b,
                                         const CliqueAssignment& cliques) const {
  SORN_ASSERT(cliques.node_count() == n_, "assignment size mismatch");
  double total = 0.0;
  for (const NodeId i : cliques.members(a))
    for (const NodeId j : cliques.members(b))
      if (i != j) total += edge_fraction(i, j);
  return total / static_cast<double>(cliques.clique_size(a));
}

}  // namespace sorn
