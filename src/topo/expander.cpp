#include "topo/expander.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace sorn {

Expander::Expander(std::vector<std::vector<NodeId>> adj)
    : n_(static_cast<NodeId>(adj.size())), adj_(std::move(adj)) {}

Expander Expander::random_regular(NodeId n, int degree, Rng& rng) {
  SORN_ASSERT(n >= 2, "expander needs at least two nodes");
  SORN_ASSERT(degree >= 1, "degree must be positive");
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  for (int d = 0; d < degree; ++d) {
    // Random permutation; repair fixed points by swapping with a neighbor
    // position so the matching is fixed-point free.
    std::vector<NodeId> perm(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    rng.shuffle(perm);
    for (NodeId i = 0; i < n; ++i) {
      if (perm[static_cast<std::size_t>(i)] == i) {
        const auto j = static_cast<std::size_t>((i + 1) % n);
        std::swap(perm[static_cast<std::size_t>(i)], perm[j]);
      }
    }
    for (NodeId i = 0; i < n; ++i) {
      const NodeId j = perm[static_cast<std::size_t>(i)];
      if (j == i) continue;  // possible residual self-map when n == 1 only
      auto& nbrs = adj[static_cast<std::size_t>(i)];
      if (std::find(nbrs.begin(), nbrs.end(), j) == nbrs.end())
        nbrs.push_back(j);
    }
  }
  return Expander(std::move(adj));
}

std::vector<NodeId> Expander::shortest_path(NodeId src, NodeId dst) const {
  if (src == dst) return {src};
  std::vector<NodeId> parent(static_cast<std::size_t>(n_), kNoNode);
  std::queue<NodeId> frontier;
  frontier.push(src);
  parent[static_cast<std::size_t>(src)] = src;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : neighbors(u)) {
      if (parent[static_cast<std::size_t>(v)] != kNoNode) continue;
      parent[static_cast<std::size_t>(v)] = u;
      if (v == dst) {
        std::vector<NodeId> path{dst};
        for (NodeId w = dst; w != src; w = parent[static_cast<std::size_t>(w)])
          path.push_back(parent[static_cast<std::size_t>(w)]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(v);
    }
  }
  return {};
}

int Expander::diameter() const {
  int diam = 0;
  for (NodeId s = 0; s < n_; ++s) {
    std::vector<int> dist(static_cast<std::size_t>(n_), -1);
    std::queue<NodeId> frontier;
    frontier.push(s);
    dist[static_cast<std::size_t>(s)] = 0;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const NodeId v : neighbors(u)) {
        if (dist[static_cast<std::size_t>(v)] != -1) continue;
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        diam = std::max(diam, dist[static_cast<std::size_t>(v)]);
        frontier.push(v);
      }
    }
  }
  return diam;
}

}  // namespace sorn
