// Birkhoff-von-Neumann decomposition of a clique-level demand matrix.
//
// Paper Sec. 5 ("Expressivity"): "we may encode gravity models,
// non-uniform clique sizes, or generally allow higher provisioning between
// certain spatial groups". The standard tool is BvN: scale the demand to a
// doubly stochastic matrix (Sinkhorn), then peel it into a convex
// combination of permutation matrices. Each permutation becomes an
// inter-clique matching shape; its coefficient becomes the matching's slot
// share, so clique-pair bandwidth tracks demand.
#pragma once

#include <vector>

#include "util/types.h"

namespace sorn {

struct BvnTerm {
  // perm[c] is the destination clique of clique c; never a fixed point
  // when the input diagonal is zero.
  std::vector<CliqueId> perm;
  // Convex coefficient; terms sum to ~1 (up to the residual tolerance).
  double coeff = 0.0;
};

struct BvnOptions {
  int sinkhorn_iterations = 200;
  // Stop when the residual mass is below this fraction.
  double residual_tolerance = 1e-3;
  // Safety cap on the number of extracted permutations.
  int max_terms = 64;
};

class BvnDecomposition {
 public:
  // weights: nc*nc row-major nonnegative matrix; the diagonal is ignored
  // (forced to zero). Every off-diagonal entry must be positive — mix with
  // a uniform floor first (mix_with_uniform) if the demand has zeros, so
  // that every clique pair retains some bandwidth and SORN's single
  // inter-hop routing stays complete.
  static BvnDecomposition compute(const std::vector<double>& weights,
                                  CliqueId nc, BvnOptions options = {});

  const std::vector<BvnTerm>& terms() const { return terms_; }
  CliqueId clique_count() const { return nc_; }

  // Sum of coefficients (<= 1; shortfall is the residual the tolerance
  // allowed).
  double total_coefficient() const;

  // Reconstruct sum(coeff * perm) as a matrix, for testing.
  std::vector<double> reconstruct() const;

 private:
  BvnDecomposition(CliqueId nc, std::vector<BvnTerm> terms)
      : nc_(nc), terms_(std::move(terms)) {}

  CliqueId nc_;
  std::vector<BvnTerm> terms_;
};

// (1 - alpha) * uniform-off-diagonal + alpha * weights, rescaled so rows
// are comparable. alpha in [0, 1); smaller alpha = closer to uniform.
std::vector<double> mix_with_uniform(const std::vector<double>& weights,
                                     CliqueId nc, double alpha);

}  // namespace sorn
