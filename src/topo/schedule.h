// A circuit schedule: the periodic sequence of matchings all nodes follow.
//
// Nodes and switches synchronously cycle through the schedule (paper Sec. 2);
// slot t applies matching slot(t mod period). A circuit that appears in a
// fraction l of the slots realizes a virtual edge of bandwidth b*l (Sec. 4).
//
// Each slot is tagged with its role so that routing can ask for e.g. the
// "first available intra-clique link" without re-deriving the clique
// structure from the matching.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/matching.h"
#include "topo/matching_set.h"
#include "util/time.h"
#include "util/types.h"

namespace sorn {

enum class SlotKind : std::uint8_t {
  kUniform,  // flat oblivious schedule (no clique structure)
  kIntra,    // circuits stay within cliques (pods)
  kInter,    // circuits cross cliques (pods) within one hierarchy level
  kGlobal,   // circuits cross the upper hierarchy level (clusters)
};

class CircuitSchedule {
 public:
  // Aborts if matchings is empty or node counts disagree. kinds must be
  // empty (all slots kUniform) or have one entry per matching.
  explicit CircuitSchedule(std::vector<Matching> matchings,
                           std::vector<SlotKind> kinds = {});

  NodeId node_count() const { return n_; }
  Slot period() const { return static_cast<Slot>(matchings_.size()); }

  const Matching& matching_at(Slot t) const {
    return matchings_[static_cast<std::size_t>(wrap(t))];
  }
  SlotKind kind_at(Slot t) const {
    return kinds_[static_cast<std::size_t>(wrap(t))];
  }

  // Whom node transmits to in slot t (== node when idle).
  NodeId dst_of(NodeId node, Slot t) const {
    return matching_at(t).dst_of(node);
  }

  // First slot >= from in which the circuit src -> dst is up, or -1 if the
  // circuit never appears in the schedule. O(period) scan; used by analysis
  // and routing setup, not in the simulator hot path.
  Slot next_slot_connecting(NodeId src, NodeId dst, Slot from) const;

  // Fraction of slots in which the circuit src -> dst is up, i.e. the
  // virtual-edge bandwidth as a fraction of node bandwidth.
  double edge_fraction(NodeId src, NodeId dst) const;

  // Fraction of slots with the given kind.
  double kind_fraction(SlotKind k) const;

  // Time to cycle the whole schedule on one uplink; with u parallel
  // uplinks running phase-shifted copies, a node sweeps all circuits in
  // period()/u slots (the paper's delta_m / u accounting).
  Picoseconds cycle_time(Picoseconds slot_duration) const {
    return period() * slot_duration;
  }

  // True when every slot's matching is a member of the given physical
  // matching set — i.e. the schedule is realizable on hardware whose OCS
  // configurations are exactly `available` with all nodes switching
  // synchronously. Note the paper's Sec. 5 point: a flat round robin is
  // realizable with the bare AWGR wavelength family, but SORN's clique
  // matchings need per-node wavelength choice (which AWGR + tunable
  // lasers provide; see tests/topo/realizability_test.cpp).
  bool realizable_with(const MatchingSet& available) const;

  // Estimated bytes of stored schedule state (matchings + slot kinds).
  // O(period); sampled by the profiler's MemoryAccountant, not hot-path.
  std::uint64_t memory_bytes() const;

  // Invariant checks (O(period * n)):
  //   - every slot is a valid permutation (checked at construction of
  //     Matching);
  //   - kinds tags are consistent with no matching crossing its tag.
  // Returns true when every non-idle circuit in an intra slot stays within
  // a clique of `cliques`, and every one in an inter slot crosses cliques.
  bool kinds_consistent(const std::vector<CliqueId>& clique_of) const;

 private:
  Slot wrap(Slot t) const { return t % period(); }

  NodeId n_ = 0;
  std::vector<Matching> matchings_;
  std::vector<SlotKind> kinds_;
};

// Phase offset of uplink `lane` out of `lanes` for a schedule of the given
// period: lanes run the same schedule shifted by period/lanes so that a node
// with u uplinks sees every circuit u times faster. When lanes does not
// divide the period the offsets are rounded; coverage remains complete, only
// evenness degrades.
Slot lane_phase(Slot period, int lanes, int lane);

}  // namespace sorn
