// A matching: the circuit configuration of the OCS layer for one time slot.
//
// Following the paper's abstraction (Fig. 2a-b), the optical layer realizes a
// permutation: in a given slot, node i transmits to exactly one node
// dst(i), and each node receives from exactly one node. A node mapped to
// itself is idle in that slot (no circuit); physical OCS ports are never
// looped back, so self-maps model unused slots.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace sorn {

class Matching {
 public:
  Matching() = default;

  // Takes the destination map: dst_map[i] is where node i transmits.
  // Aborts if dst_map is not a permutation.
  explicit Matching(std::vector<NodeId> dst_map);

  // Identity matching of n nodes: every node idle.
  static Matching idle(NodeId n);

  // Cyclic shift by k: i -> (i + k) mod n. The AWGR wavelength family.
  static Matching cyclic_shift(NodeId n, NodeId k);

  NodeId size() const { return static_cast<NodeId>(dst_.size()); }
  NodeId dst_of(NodeId src) const { return dst_[static_cast<std::size_t>(src)]; }
  // O(n) scan: the inverse permutation is not stored. A schedule keeps one
  // Matching per slot, and at Table-1 scale (N = 4096, period ~24k slots)
  // a stored inverse doubles hundreds of megabytes of schedule state for a
  // lookup nothing on the simulator hot path needs.
  NodeId src_of(NodeId dst) const;
  bool is_idle(NodeId node) const { return dst_of(node) == node; }

  // True when no node is idle (a perfect matching of transmitters to
  // receivers).
  bool is_perfect() const;

  // Number of non-idle circuits.
  NodeId active_circuits() const;

  bool operator==(const Matching& other) const { return dst_ == other.dst_; }

  // Estimated heap bytes of this matching (the destination map). Profiler
  // gauge input: stored matchings are the dominant memory consumer at
  // Table-1 scale (see DESIGN.md §10).
  std::uint64_t memory_bytes() const {
    return dst_.capacity() * sizeof(NodeId);
  }

 private:
  std::vector<NodeId> dst_;
};

}  // namespace sorn
