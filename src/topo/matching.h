// A matching: the circuit configuration of the OCS layer for one time slot.
//
// Following the paper's abstraction (Fig. 2a-b), the optical layer realizes a
// permutation: in a given slot, node i transmits to exactly one node
// dst(i), and each node receives from exactly one node. A node mapped to
// itself is idle in that slot (no circuit); physical OCS ports are never
// looped back, so self-maps model unused slots.
//
// Two storage forms, tagged (DESIGN.md §11):
//
//  - kShift: a three-level mixed-radix cyclic shift in O(1) state. Node ids
//    are decomposed into digits i = a·(n2·n3) + b·n3 + c with a < n1,
//    b < n2, c < n3 (n = n1·n2·n3), and each digit is shifted cyclically by
//    its own offset: dst = ((a+k1) mod n1)·n2·n3 + ((b+k2) mod n2)·n3 +
//    ((c+k3) mod n3). This covers every structured matching the builders
//    emit — the AWGR wavelength family m_k(i) = (i+k) mod n is the
//    degenerate n1 = n2 = 1 case, SORN intra/inter slots on contiguous
//    equal cliques are block-local / block-rotating shifts, and the
//    orn-hd/hierarchical digit round-robins are stride shifts — so a
//    schedule slot costs O(1) bytes instead of O(n).
//  - kExplicit: the full destination vector, for arbitrary permutations
//    (Opera's random 1-factorization, BvN decomposition slots, failure-
//    masked assignments).
//
// dst_of/src_of/is_idle/active_circuits are O(1) on the shift form; the
// simulator's per-slot hot loop never touches O(n) matching state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace sorn {

class Matching {
 public:
  Matching() = default;

  // Takes the destination map: dst_map[i] is where node i transmits.
  // Aborts if dst_map is not a permutation. Always stored explicitly.
  explicit Matching(std::vector<NodeId> dst_map);

  // Identity matching of n nodes: every node idle. O(1) state.
  static Matching idle(NodeId n);

  // Cyclic shift by k: i -> (i + k) mod n. The AWGR wavelength family.
  // O(1) state.
  static Matching cyclic_shift(NodeId n, NodeId k);

  // General three-level mixed-radix shift over n = n1*n2*n3 nodes (see the
  // header comment). Offsets are reduced mod their radix; the parameters
  // are canonicalized (levels of radix 1 dropped, adjacent levels with an
  // unshifted inner digit merged) so equal permutations built through
  // different factorizations compare equal on the fast path. O(1) state.
  static Matching radix_shift(NodeId n1, NodeId k1, NodeId n2, NodeId k2,
                              NodeId n3, NodeId k3);

  NodeId size() const { return n_; }

  NodeId dst_of(NodeId src) const {
    if (form_ == Form::kExplicit) return dst_[static_cast<std::size_t>(src)];
    if (n2_ == 1) {  // pure cyclic shift (canonical: n1 <= n2 <= stride use)
      const NodeId d = static_cast<NodeId>(src + k3_);
      return d >= n3_ ? static_cast<NodeId>(d - n3_) : d;
    }
    return shift_dst(src);
  }

  // O(1) on the shift form (subtract each digit offset); O(n) scan on the
  // explicit form, whose inverse permutation is deliberately not stored
  // (nothing on the simulator hot path needs it — see DESIGN.md §9).
  NodeId src_of(NodeId dst) const;

  // A shift-form matching is idle either at every node (all offsets zero)
  // or at none (any nonzero digit offset moves every node), so this is
  // O(1) there.
  bool is_idle(NodeId node) const {
    if (form_ == Form::kShift) return k1_ == 0 && k2_ == 0 && k3_ == 0;
    return dst_[static_cast<std::size_t>(node)] == node;
  }

  // True when no node is idle (a perfect matching of transmitters to
  // receivers).
  bool is_perfect() const;

  // Number of non-idle circuits.
  NodeId active_circuits() const;

  // Equal iff the two matchings realize the same permutation, regardless
  // of storage form. Shift-vs-shift with identical canonical parameters
  // short-circuits; every other combination falls back to an elementwise
  // compare.
  bool operator==(const Matching& other) const;

  // True when this matching is stored in the O(1) shift form.
  bool is_compact() const { return form_ == Form::kShift; }

  // An explicit-form copy realizing the same permutation. Test hook for
  // pinning the compact path byte-identical against explicit storage.
  Matching materialized() const;

  // Estimated heap bytes of this matching. The shift form owns no heap at
  // all — this is what collapses the schedule_matchings profiler gauge
  // from O(period·n) to O(period) (DESIGN.md §11).
  std::uint64_t memory_bytes() const {
    return form_ == Form::kExplicit ? dst_.capacity() * sizeof(NodeId) : 0;
  }

 private:
  enum class Form : std::uint8_t { kShift, kExplicit };

  NodeId shift_dst(NodeId src) const;

  Form form_ = Form::kShift;
  NodeId n_ = 0;
  // Canonical shift parameters: radix-1 levels are pushed to the front as
  // (1, 0), so a pure cyclic shift always sits in (n3_, k3_) and the
  // dst_of fast path only tests n2_.
  NodeId n1_ = 1, n2_ = 1, n3_ = 1;
  NodeId k1_ = 0, k2_ = 0, k3_ = 0;
  NodeId stride1_ = 1;  // n2_ * n3_
  std::vector<NodeId> dst_;  // explicit form only
};

}  // namespace sorn
