#include "topo/schedule_builder.h"

#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "util/assert.h"
#include "util/rng.h"

namespace sorn {
namespace {

// Smallest m such that (a * m) % cycle == 0; cycle == 0 means "no cycle to
// complete" and yields 1.
std::int64_t closure_multiplier(std::int64_t a, std::int64_t cycle) {
  if (cycle == 0) return 1;
  return cycle / std::gcd(a, cycle);
}

// The matching for intra-clique round-robin step t: within every clique,
// position idx connects to position (idx + o) mod size with offset
// o = 1 + (t mod (size-1)). Cliques advance their own cycles, so unequal
// sizes are fine; size-1 cliques idle.
Matching intra_matching(const CliqueAssignment& cliques, std::int64_t t) {
  if (cliques.contiguous_equal_blocks()) {
    // Block layout: every clique is the same size s and owns nodes
    // [c*s, (c+1)*s), so the slot is a block-local cyclic shift —
    // O(1) state instead of an O(n) permutation vector.
    const NodeId s = cliques.clique_size(0);
    if (s < 2) return Matching::idle(cliques.node_count());
    const auto o = static_cast<NodeId>(1 + (t % (s - 1)));
    return Matching::radix_shift(
        1, 0, static_cast<NodeId>(cliques.clique_count()), 0, s, o);
  }
  const NodeId n = cliques.node_count();
  std::vector<NodeId> dst(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) dst[static_cast<std::size_t>(i)] = i;
  for (CliqueId c = 0; c < cliques.clique_count(); ++c) {
    const auto& members = cliques.members(c);
    const auto s = static_cast<std::int64_t>(members.size());
    if (s < 2) continue;
    const std::int64_t o = 1 + (t % (s - 1));
    for (std::int64_t idx = 0; idx < s; ++idx) {
      dst[static_cast<std::size_t>(members[static_cast<std::size_t>(idx)])] =
          members[static_cast<std::size_t>((idx + o) % s)];
    }
  }
  return Matching(std::move(dst));
}

// The matching for inter-clique round-robin step t. Requires equal-sized
// cliques (size s, count nc): with clique shift k = 1 + (t mod (nc-1)) and
// port rotation rho = (t / (nc-1)) mod s, node (c, j) connects to
// (c + k mod nc, (j + rho) mod s). Over a full cycle of (nc-1)*s steps every
// node is connected once to every node of every other clique, preserving the
// "fixed superset of neighbors" property (paper Sec. 5).
Matching inter_matching(const CliqueAssignment& cliques, std::int64_t t) {
  const NodeId n = cliques.node_count();
  const std::int64_t nc = cliques.clique_count();
  const std::int64_t s = cliques.clique_size(0);
  const std::int64_t k = 1 + (t % (nc - 1));
  const std::int64_t rho = (t / (nc - 1)) % s;
  if (cliques.contiguous_equal_blocks()) {
    // Block layout: (c, j) -> (c + k, j + rho) is a two-level shift.
    return Matching::radix_shift(1, 0, static_cast<NodeId>(nc),
                                 static_cast<NodeId>(k),
                                 static_cast<NodeId>(s),
                                 static_cast<NodeId>(rho));
  }
  std::vector<NodeId> dst(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    const std::int64_t c = cliques.clique_of(i);
    const std::int64_t j = cliques.index_in_clique(i);
    const auto cp = static_cast<CliqueId>((c + k) % nc);
    const auto jp = static_cast<std::size_t>((j + rho) % s);
    dst[static_cast<std::size_t>(i)] = cliques.members(cp)[jp];
  }
  return Matching(std::move(dst));
}

// Bresenham interleave of an intra stream (cycle length intra_cycle,
// generator intra_at) and an inter stream (cycle length inter_cycle,
// generator inter_at) in the exact ratio q. Shared by sorn() and
// sorn_weighted().
CircuitSchedule interleave_streams(
    Rational q, std::int64_t intra_cycle, std::int64_t inter_cycle,
    const std::function<Matching(std::int64_t)>& intra_at,
    const std::function<Matching(std::int64_t)>& inter_at, Slot max_period) {
  const std::int64_t m = std::lcm(closure_multiplier(q.num, intra_cycle),
                                  closure_multiplier(q.den, inter_cycle));
  const std::int64_t intra_slots = q.num * m;
  const std::int64_t inter_slots = q.den * m;
  const std::int64_t period = intra_slots + inter_slots;
  SORN_ASSERT(period <= max_period,
              "SORN schedule period too large; coarsen q with "
              "Rational::approximate");

  std::vector<Matching> slots;
  std::vector<SlotKind> kinds;
  slots.reserve(static_cast<std::size_t>(period));
  kinds.reserve(static_cast<std::size_t>(period));
  std::int64_t emitted_intra = 0;
  std::int64_t emitted_inter = 0;
  for (std::int64_t t = 0; t < period; ++t) {
    const bool pick_intra =
        (emitted_intra + 1) * inter_slots <= (emitted_inter + 1) * intra_slots;
    if (pick_intra && emitted_intra < intra_slots) {
      slots.push_back(intra_at(emitted_intra % intra_cycle));
      kinds.push_back(SlotKind::kIntra);
      ++emitted_intra;
    } else {
      slots.push_back(inter_at(emitted_inter % inter_cycle));
      kinds.push_back(SlotKind::kInter);
      ++emitted_inter;
    }
  }
  SORN_ASSERT(emitted_intra == intra_slots && emitted_inter == inter_slots,
              "interleave accounting error");
  return CircuitSchedule(std::move(slots), std::move(kinds));
}

// Generalized largest-remainder interleave of k periodic streams with
// integer share weights. Streams with share 0 are skipped entirely.
struct Stream {
  std::int64_t share = 0;
  std::int64_t cycle = 0;  // matchings per full stream cycle
  std::function<Matching(std::int64_t)> at;
  SlotKind kind = SlotKind::kUniform;
};

CircuitSchedule interleave_multi(std::vector<Stream> streams,
                                 Slot max_period) {
  // Closure: emit share_i * m matchings of stream i with the smallest m
  // completing every active stream's cycle.
  std::int64_t m = 1;
  std::int64_t share_sum = 0;
  for (const Stream& s : streams) {
    if (s.share == 0) continue;
    SORN_ASSERT(s.cycle > 0, "active stream must have a cycle");
    m = std::lcm(m, closure_multiplier(s.share, s.cycle));
    share_sum += s.share;
  }
  SORN_ASSERT(share_sum > 0, "at least one stream must be active");
  std::int64_t period = share_sum * m;
  SORN_ASSERT(period <= max_period,
              "schedule period too large; coarsen the shares");

  std::vector<std::int64_t> target(streams.size(), 0);
  std::vector<std::int64_t> emitted(streams.size(), 0);
  for (std::size_t i = 0; i < streams.size(); ++i)
    target[i] = streams[i].share * m;

  std::vector<Matching> slots;
  std::vector<SlotKind> kinds;
  slots.reserve(static_cast<std::size_t>(period));
  kinds.reserve(static_cast<std::size_t>(period));
  for (std::int64_t t = 0; t < period; ++t) {
    // Emit the stream furthest behind its proportional target.
    std::size_t best = streams.size();
    std::int64_t best_deficit = std::numeric_limits<std::int64_t>::min();
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (emitted[i] >= target[i]) continue;
      const std::int64_t deficit =
          streams[i].share * (t + 1) - emitted[i] * share_sum;
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = i;
      }
    }
    SORN_ASSERT(best < streams.size(), "interleave ran out of streams");
    slots.push_back(streams[best].at(emitted[best] % streams[best].cycle));
    kinds.push_back(streams[best].kind);
    ++emitted[best];
  }
  return CircuitSchedule(std::move(slots), std::move(kinds));
}

}  // namespace

Rational Rational::approximate(double v, std::int64_t max_den) {
  SORN_ASSERT(v > 0.0, "can only approximate positive ratios");
  SORN_ASSERT(max_den >= 1, "max_den must be at least 1");
  // Continued-fraction expansion, truncated when the denominator would
  // exceed max_den.
  std::int64_t p0 = 0, q0 = 1, p1 = 1, q1 = 0;
  double x = v;
  for (int iter = 0; iter < 64; ++iter) {
    const auto a = static_cast<std::int64_t>(std::floor(x));
    const std::int64_t p2 = a * p1 + p0;
    const std::int64_t q2 = a * q1 + q0;
    if (q2 > max_den) break;
    p0 = p1;
    q0 = q1;
    p1 = p2;
    q1 = q2;
    const double frac = x - static_cast<double>(a);
    if (frac < 1e-12) break;
    x = 1.0 / frac;
  }
  if (q1 == 0) return {1, 1};
  return {p1, q1};
}

CircuitSchedule ScheduleBuilder::round_robin(NodeId n) {
  SORN_ASSERT(n >= 2, "round robin needs at least two nodes");
  std::vector<Matching> slots;
  slots.reserve(static_cast<std::size_t>(n) - 1);
  for (NodeId k = 1; k < n; ++k) slots.push_back(Matching::cyclic_shift(n, k));
  return CircuitSchedule(std::move(slots));
}

CircuitSchedule ScheduleBuilder::rotor(NodeId n, Slot dwell) {
  SORN_ASSERT(n >= 2, "rotor needs at least two nodes");
  SORN_ASSERT(dwell >= 1, "dwell must be at least one slot");
  std::vector<Matching> slots;
  slots.reserve(static_cast<std::size_t>(n - 1) *
                static_cast<std::size_t>(dwell));
  for (NodeId k = 1; k < n; ++k) {
    const Matching m = Matching::cyclic_shift(n, k);
    for (Slot d = 0; d < dwell; ++d) slots.push_back(m);
  }
  return CircuitSchedule(std::move(slots));
}

CircuitSchedule ScheduleBuilder::rotor_random(NodeId n, Slot dwell,
                                              std::uint64_t seed) {
  SORN_ASSERT(n >= 4 && n % 2 == 0, "rotor_random requires even n >= 4");
  SORN_ASSERT(dwell >= 1, "dwell must be at least one slot");
  Rng rng(seed);
  // Random relabeling of nodes.
  std::vector<NodeId> label(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) label[static_cast<std::size_t>(i)] = i;
  rng.shuffle(label);
  // Random round order.
  std::vector<NodeId> rounds(static_cast<std::size_t>(n - 1));
  for (NodeId r = 0; r < n - 1; ++r) rounds[static_cast<std::size_t>(r)] = r;
  rng.shuffle(rounds);

  std::vector<Matching> slots;
  slots.reserve(static_cast<std::size_t>(n - 1) *
                static_cast<std::size_t>(dwell));
  for (const NodeId r : rounds) {
    // Circle method, round r: hub (n-1) pairs with r; (r+i) with (r-i).
    std::vector<NodeId> dst(static_cast<std::size_t>(n));
    auto pair_up = [&](NodeId a, NodeId b) {
      dst[static_cast<std::size_t>(label[static_cast<std::size_t>(a)])] =
          label[static_cast<std::size_t>(b)];
      dst[static_cast<std::size_t>(label[static_cast<std::size_t>(b)])] =
          label[static_cast<std::size_t>(a)];
    };
    pair_up(n - 1, r);
    for (NodeId i = 1; i < n / 2; ++i) {
      const auto a = static_cast<NodeId>((r + i) % (n - 1));
      const auto b = static_cast<NodeId>((r - i + (n - 1)) % (n - 1));
      pair_up(a, b);
    }
    const Matching m{std::move(dst)};
    for (Slot d = 0; d < dwell; ++d) slots.push_back(m);
  }
  return CircuitSchedule(std::move(slots));
}

CircuitSchedule ScheduleBuilder::orn_hd(NodeId n, int h) {
  SORN_ASSERT(h >= 1, "dimension must be at least 1");
  // Find integer r with r^h == n.
  auto r = static_cast<NodeId>(std::llround(
      std::pow(static_cast<double>(n), 1.0 / static_cast<double>(h))));
  std::int64_t check = 1;
  for (int d = 0; d < h; ++d) check *= r;
  SORN_ASSERT(check == n, "orn_hd requires n to be a perfect h-th power");
  SORN_ASSERT(r >= 2, "each dimension must have at least two coordinates");

  std::vector<Matching> slots;
  slots.reserve(static_cast<std::size_t>(h) * static_cast<std::size_t>(r - 1));
  std::int64_t stride = 1;
  for (int d = 0; d < h; ++d) {
    // Shift one base-r digit: a three-level shift with the moving digit in
    // the middle and the untouched high/low digits around it.
    const auto hi = static_cast<NodeId>(n / (stride * r));
    for (NodeId k = 1; k < r; ++k)
      slots.push_back(Matching::radix_shift(hi, 0, r, k,
                                            static_cast<NodeId>(stride), 0));
    stride *= r;
  }
  return CircuitSchedule(std::move(slots));
}

CircuitSchedule ScheduleBuilder::orn_mixed(
    NodeId n, const std::vector<NodeId>& radices) {
  SORN_ASSERT(!radices.empty(), "need at least one radix");
  std::int64_t product = 1;
  for (const NodeId r : radices) {
    SORN_ASSERT(r >= 2, "each radix must be at least 2");
    product *= r;
  }
  SORN_ASSERT(product == n, "radices must multiply to n");

  std::vector<Matching> slots;
  std::int64_t stride = 1;
  for (const NodeId r : radices) {
    const auto hi = static_cast<NodeId>(n / (stride * r));
    for (NodeId k = 1; k < r; ++k)
      slots.push_back(Matching::radix_shift(hi, 0, r, k,
                                            static_cast<NodeId>(stride), 0));
    stride *= r;
  }
  return CircuitSchedule(std::move(slots));
}

CircuitSchedule ScheduleBuilder::sorn(const CliqueAssignment& cliques,
                                      Rational q, Slot max_period) {
  SORN_ASSERT(q.num >= 1 && q.den >= 1, "q must be a positive rational");
  SORN_ASSERT(q.num >= q.den, "oversubscription q must be >= 1");
  const CliqueId nc = cliques.clique_count();

  // Intra cycle length: lcm over cliques of (size - 1); 0 when no clique
  // has an intra link.
  std::int64_t intra_cycle = 0;
  for (CliqueId c = 0; c < nc; ++c) {
    const std::int64_t s = cliques.clique_size(c);
    if (s >= 2) {
      intra_cycle = intra_cycle == 0 ? s - 1 : std::lcm(intra_cycle, s - 1);
    }
  }
  const bool has_inter = nc >= 2;
  const bool has_intra = intra_cycle > 0;

  if (!has_inter) {
    // Single clique: a flat round robin over its members, tagged intra.
    SORN_ASSERT(has_intra, "a single clique of size 1 has no circuits");
    std::vector<Matching> slots;
    std::vector<SlotKind> kinds;
    for (std::int64_t t = 0; t < intra_cycle; ++t) {
      slots.push_back(intra_matching(cliques, t));
      kinds.push_back(SlotKind::kIntra);
    }
    return CircuitSchedule(std::move(slots), std::move(kinds));
  }

  if (has_intra) {
    SORN_ASSERT(cliques.equal_sized(),
                "inter-clique matchings require equal-sized cliques");
  }
  const std::int64_t s = cliques.clique_size(0);
  const std::int64_t inter_cycle = static_cast<std::int64_t>(nc - 1) * s;

  if (!has_intra) {
    // All cliques are singletons: pure inter round robin (flat ORN over
    // cliques), tagged inter.
    std::vector<Matching> slots;
    std::vector<SlotKind> kinds;
    for (std::int64_t t = 0; t < inter_cycle; ++t) {
      slots.push_back(inter_matching(cliques, t));
      kinds.push_back(SlotKind::kInter);
    }
    return CircuitSchedule(std::move(slots), std::move(kinds));
  }

  return interleave_streams(
      q, intra_cycle, inter_cycle,
      [&cliques](std::int64_t t) { return intra_matching(cliques, t); },
      [&cliques](std::int64_t t) { return inter_matching(cliques, t); },
      max_period);
}

CircuitSchedule ScheduleBuilder::sorn_weighted(
    const CliqueAssignment& cliques, Rational q,
    const std::vector<double>& clique_weights, const WeightedOptions& options,
    Slot max_period) {
  SORN_ASSERT(q.num >= 1 && q.den >= 1 && q.num >= q.den,
              "q must be a rational >= 1");
  const CliqueId nc = cliques.clique_count();
  SORN_ASSERT(nc >= 2, "weighted schedules need at least two cliques");
  SORN_ASSERT(cliques.equal_sized(),
              "inter-clique matchings require equal-sized cliques");
  const std::int64_t s = cliques.clique_size(0);

  // Decompose the (uniform-floored) demand into clique permutations.
  const std::vector<double> mixed =
      mix_with_uniform(clique_weights, nc, options.demand_alpha);
  const BvnDecomposition bvn =
      BvnDecomposition::compute(mixed, nc, options.bvn);

  // Quantize coefficients into an emission list of sigma indices. Every
  // term gets at least one slot so every clique pair stays connected.
  const auto& terms = bvn.terms();
  const double total = bvn.total_coefficient();
  std::vector<std::int64_t> count(terms.size());
  std::int64_t emission_len = 0;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    count[i] = std::max<std::int64_t>(
        1, std::llround(terms[i].coeff / total * options.emission_slots));
    emission_len += count[i];
  }
  // Largest-remainder spread of the sigma indices across the list.
  std::vector<std::size_t> emission;
  emission.reserve(static_cast<std::size_t>(emission_len));
  std::vector<std::int64_t> emitted(terms.size(), 0);
  for (std::int64_t p = 0; p < emission_len; ++p) {
    std::size_t best = 0;
    std::int64_t best_deficit = std::numeric_limits<std::int64_t>::min();
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const std::int64_t deficit = count[i] * (p + 1) - emitted[i] * emission_len;
      if (deficit > best_deficit && emitted[i] < count[i] * (p / emission_len + 1)) {
        best_deficit = deficit;
        best = i;
      }
    }
    emission.push_back(best);
    ++emitted[best];
  }

  // Inter step t: sigma = emission[t % len]; the rotation rho advances per
  // use of that sigma, covering all s rotations over s repetitions of the
  // emission list, so the inter cycle closes at s * len.
  const std::int64_t inter_cycle = s * emission_len;
  auto inter_at = [&cliques, &terms, &emission, emission_len, s,
                   nc](std::int64_t t) {
    const std::size_t sigma_idx = emission[static_cast<std::size_t>(
        t % emission_len)];
    // Uses of this sigma before step t: full passes + uses within the
    // current pass.
    const std::int64_t pass = t / emission_len;
    std::int64_t in_pass = 0;
    for (std::int64_t p = 0; p < t % emission_len; ++p)
      if (emission[static_cast<std::size_t>(p)] == sigma_idx) ++in_pass;
    std::int64_t per_pass = 0;
    for (std::int64_t p = 0; p < emission_len; ++p)
      if (emission[static_cast<std::size_t>(p)] == sigma_idx) ++per_pass;
    const std::int64_t rho = (pass * per_pass + in_pass) % s;

    const auto& sigma = terms[sigma_idx].perm;
    const NodeId n = cliques.node_count();
    std::vector<NodeId> dst(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) {
      const CliqueId c = cliques.clique_of(i);
      const std::int64_t j = cliques.index_in_clique(i);
      const CliqueId cp = sigma[static_cast<std::size_t>(c)];
      SORN_ASSERT(cp != c, "BvN permutation has a fixed point");
      dst[static_cast<std::size_t>(i)] =
          cliques.members(cp)[static_cast<std::size_t>((j + rho) % s)];
    }
    (void)nc;
    return Matching(std::move(dst));
  };

  // Intra cycle identical to sorn().
  std::int64_t intra_cycle = 0;
  for (CliqueId c = 0; c < nc; ++c)
    if (cliques.clique_size(c) >= 2)
      intra_cycle = intra_cycle == 0
                        ? cliques.clique_size(c) - 1
                        : std::lcm<std::int64_t>(intra_cycle,
                                                 cliques.clique_size(c) - 1);
  SORN_ASSERT(intra_cycle > 0,
              "weighted schedules assume cliques of size >= 2");

  return interleave_streams(
      q, intra_cycle, inter_cycle,
      [&cliques](std::int64_t t) { return intra_matching(cliques, t); },
      inter_at, max_period);
}

CircuitSchedule ScheduleBuilder::sorn_hierarchical(const Hierarchy& h,
                                                   HierShares shares,
                                                   Slot max_period) {
  const NodeId n = h.node_count();
  const NodeId s = h.pod_size();
  const CliqueId p = h.pods_per_cluster();
  const CliqueId nc = h.cluster_count();
  SORN_ASSERT(shares.intra >= 0 && shares.inter >= 0 && shares.global >= 0,
              "shares must be nonnegative");
  SORN_ASSERT((shares.intra > 0) == (s >= 2),
              "intra share must be positive iff pods have >= 2 nodes");
  SORN_ASSERT((shares.inter > 0) == (p >= 2),
              "inter share must be positive iff clusters have >= 2 pods");
  SORN_ASSERT((shares.global > 0) == (nc >= 2),
              "global share must be positive iff there are >= 2 clusters");

  const CliqueAssignment pods = h.pods();

  std::vector<Stream> streams;
  {
    Stream intra;
    intra.share = shares.intra;
    intra.cycle = s >= 2 ? s - 1 : 0;
    intra.kind = SlotKind::kIntra;
    intra.at = [pods](std::int64_t t) { return intra_matching(pods, t); };
    streams.push_back(std::move(intra));
  }
  {
    // Pod-level round robin within each cluster: pod shift k, index
    // rotation rho; all clusters move in lock step so the union is a
    // global permutation.
    Stream inter;
    inter.share = shares.inter;
    inter.cycle = p >= 2 ? static_cast<std::int64_t>(p - 1) * s : 0;
    inter.kind = SlotKind::kInter;
    // The hierarchy is contiguous by construction (node id = cluster,
    // pod-in-cluster, index-in-pod in mixed radix), so this is the shift
    // (cluster fixed, pod + k, index + rho) in O(1) state.
    inter.at = [nc, s, p](std::int64_t t) {
      const auto k = static_cast<NodeId>(1 + (t % (p - 1)));
      const auto rho = static_cast<NodeId>((t / (p - 1)) % s);
      return Matching::radix_shift(static_cast<NodeId>(nc), 0,
                                   static_cast<NodeId>(p), k, s, rho);
    };
    streams.push_back(std::move(inter));
  }
  {
    // Cluster-level round robin: cluster shift K, position rotation over
    // the whole cluster.
    Stream global;
    global.share = shares.global;
    const std::int64_t cluster_size = h.cluster_size();
    global.cycle =
        nc >= 2 ? static_cast<std::int64_t>(nc - 1) * cluster_size : 0;
    global.kind = SlotKind::kGlobal;
    // (cluster + K, position + rho): a two-level shift over the
    // contiguous cluster-major layout.
    global.at = [nc, cluster_size](std::int64_t t) {
      const auto big_k = static_cast<NodeId>(1 + (t % (nc - 1)));
      const auto rho = static_cast<NodeId>((t / (nc - 1)) % cluster_size);
      return Matching::radix_shift(1, 0, static_cast<NodeId>(nc), big_k,
                                   static_cast<NodeId>(cluster_size), rho);
    };
    streams.push_back(std::move(global));
  }
  (void)n;
  return interleave_multi(std::move(streams), max_period);
}

}  // namespace sorn
