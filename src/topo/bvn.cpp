#include "topo/bvn.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace sorn {
namespace {

// Kuhn's augmenting-path bipartite matching over the support of the
// residual matrix (entries > eps). Returns perm[c] = matched column of row
// c, or an empty vector if no perfect matching exists.
std::vector<CliqueId> perfect_matching(const std::vector<double>& m,
                                       CliqueId nc, double eps) {
  const auto n = static_cast<std::size_t>(nc);
  std::vector<CliqueId> match_col(n, -1);  // column -> row
  std::vector<CliqueId> match_row(n, -1);  // row -> column

  std::vector<bool> visited(n);
  // Try to find an augmenting path from `row`.
  auto augment = [&](auto&& self, CliqueId row) -> bool {
    for (CliqueId col = 0; col < nc; ++col) {
      if (visited[static_cast<std::size_t>(col)]) continue;
      if (m[static_cast<std::size_t>(row) * n +
            static_cast<std::size_t>(col)] <= eps)
        continue;
      visited[static_cast<std::size_t>(col)] = true;
      if (match_col[static_cast<std::size_t>(col)] == -1 ||
          self(self, match_col[static_cast<std::size_t>(col)])) {
        match_col[static_cast<std::size_t>(col)] = row;
        match_row[static_cast<std::size_t>(row)] = col;
        return true;
      }
    }
    return false;
  };

  for (CliqueId row = 0; row < nc; ++row) {
    std::fill(visited.begin(), visited.end(), false);
    if (!augment(augment, row)) return {};
  }
  return match_row;
}

}  // namespace

std::vector<double> mix_with_uniform(const std::vector<double>& weights,
                                     CliqueId nc, double alpha) {
  SORN_ASSERT(alpha >= 0.0 && alpha < 1.0, "alpha must be in [0,1)");
  const auto n = static_cast<std::size_t>(nc);
  SORN_ASSERT(weights.size() == n * n, "weights must be nc x nc");
  double total = 0.0;
  for (CliqueId i = 0; i < nc; ++i)
    for (CliqueId j = 0; j < nc; ++j)
      if (i != j) total += weights[static_cast<std::size_t>(i) * n +
                                   static_cast<std::size_t>(j)];
  const double pairs = static_cast<double>(nc) * (nc - 1);
  const double uniform = total > 0.0 ? total / pairs : 1.0;
  std::vector<double> mixed(n * n, 0.0);
  for (CliqueId i = 0; i < nc; ++i) {
    for (CliqueId j = 0; j < nc; ++j) {
      if (i == j) continue;
      const double w =
          weights[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)];
      mixed[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] =
          (1.0 - alpha) * uniform + alpha * w;
    }
  }
  return mixed;
}

BvnDecomposition BvnDecomposition::compute(const std::vector<double>& weights,
                                           CliqueId nc, BvnOptions options) {
  SORN_ASSERT(nc >= 2, "BvN needs at least two cliques");
  const auto n = static_cast<std::size_t>(nc);
  SORN_ASSERT(weights.size() == n * n, "weights must be nc x nc");

  // Copy with zeroed diagonal; verify positivity off-diagonal.
  std::vector<double> m(n * n, 0.0);
  for (CliqueId i = 0; i < nc; ++i) {
    for (CliqueId j = 0; j < nc; ++j) {
      if (i == j) continue;
      const double w =
          weights[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)];
      SORN_ASSERT(w > 0.0,
                  "all off-diagonal weights must be positive; apply "
                  "mix_with_uniform first");
      m[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] = w;
    }
  }

  // Sinkhorn: alternately normalize rows and columns toward doubly
  // stochastic. Zero-diagonal positive matrices converge.
  for (int it = 0; it < options.sinkhorn_iterations; ++it) {
    for (CliqueId i = 0; i < nc; ++i) {
      double row = 0.0;
      for (CliqueId j = 0; j < nc; ++j)
        row += m[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)];
      for (CliqueId j = 0; j < nc; ++j)
        m[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] /= row;
    }
    for (CliqueId j = 0; j < nc; ++j) {
      double col = 0.0;
      for (CliqueId i = 0; i < nc; ++i)
        col += m[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)];
      for (CliqueId i = 0; i < nc; ++i)
        m[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] /= col;
    }
  }

  // Peel permutations: support matching, subtract min coefficient.
  std::vector<BvnTerm> terms;
  double remaining = 1.0;
  const double eps = 1e-9;
  for (int t = 0; t < options.max_terms && remaining > options.residual_tolerance;
       ++t) {
    const std::vector<CliqueId> perm = perfect_matching(m, nc, eps);
    if (perm.empty()) break;
    double coeff = 1e300;
    for (CliqueId i = 0; i < nc; ++i)
      coeff = std::min(coeff, m[static_cast<std::size_t>(i) * n +
                                static_cast<std::size_t>(perm[
                                    static_cast<std::size_t>(i)])]);
    for (CliqueId i = 0; i < nc; ++i)
      m[static_cast<std::size_t>(i) * n +
        static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] -= coeff;
    terms.push_back(BvnTerm{perm, coeff});
    remaining -= coeff;
  }
  SORN_ASSERT(!terms.empty(), "BvN extracted no permutations");
  return BvnDecomposition(nc, std::move(terms));
}

double BvnDecomposition::total_coefficient() const {
  double total = 0.0;
  for (const auto& t : terms_) total += t.coeff;
  return total;
}

std::vector<double> BvnDecomposition::reconstruct() const {
  const auto n = static_cast<std::size_t>(nc_);
  std::vector<double> m(n * n, 0.0);
  for (const auto& t : terms_)
    for (CliqueId i = 0; i < nc_; ++i)
      m[static_cast<std::size_t>(i) * n +
        static_cast<std::size_t>(t.perm[static_cast<std::size_t>(i)])] +=
          t.coeff;
  return m;
}

}  // namespace sorn
