#include "topo/schedule.h"

#include "util/assert.h"

namespace sorn {

CircuitSchedule::CircuitSchedule(std::vector<Matching> matchings,
                                 std::vector<SlotKind> kinds)
    : matchings_(std::move(matchings)), kinds_(std::move(kinds)) {
  SORN_ASSERT(!matchings_.empty(), "schedule must have at least one slot");
  n_ = matchings_.front().size();
  for (const auto& m : matchings_)
    SORN_ASSERT(m.size() == n_, "all slots must cover the same node count");
  if (kinds_.empty()) {
    kinds_.assign(matchings_.size(), SlotKind::kUniform);
  }
  SORN_ASSERT(kinds_.size() == matchings_.size(),
              "one slot kind per matching required");
}

Slot CircuitSchedule::next_slot_connecting(NodeId src, NodeId dst,
                                           Slot from) const {
  for (Slot d = 0; d < period(); ++d) {
    const Slot t = from + d;
    if (dst_of(src, t) == dst && src != dst) return t;
    if (src == dst) return from;  // trivially "connected" to self
  }
  return -1;
}

double CircuitSchedule::edge_fraction(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  Slot hits = 0;
  for (Slot t = 0; t < period(); ++t)
    if (dst_of(src, t) == dst) ++hits;
  return static_cast<double>(hits) / static_cast<double>(period());
}

double CircuitSchedule::kind_fraction(SlotKind k) const {
  Slot hits = 0;
  for (const SlotKind kind : kinds_)
    if (kind == k) ++hits;
  return static_cast<double>(hits) / static_cast<double>(period());
}

std::uint64_t CircuitSchedule::memory_bytes() const {
  std::uint64_t bytes = matchings_.capacity() * sizeof(Matching) +
                        kinds_.capacity() * sizeof(SlotKind);
  for (const Matching& m : matchings_) bytes += m.memory_bytes();
  return bytes;
}

bool CircuitSchedule::realizable_with(const MatchingSet& available) const {
  if (available.node_count() != n_) return false;
  for (const Matching& m : matchings_)
    if (!available.find(m).has_value()) return false;
  return true;
}

bool CircuitSchedule::kinds_consistent(
    const std::vector<CliqueId>& clique_of) const {
  SORN_ASSERT(clique_of.size() == static_cast<std::size_t>(n_),
              "clique map size mismatch");
  for (Slot t = 0; t < period(); ++t) {
    const Matching& m = matching_at(t);
    for (NodeId i = 0; i < n_; ++i) {
      if (m.is_idle(i)) continue;
      const bool same = clique_of[static_cast<std::size_t>(i)] ==
                        clique_of[static_cast<std::size_t>(m.dst_of(i))];
      if (kind_at(t) == SlotKind::kIntra && !same) return false;
      if (kind_at(t) == SlotKind::kInter && same) return false;
    }
  }
  return true;
}

Slot lane_phase(Slot period, int lanes, int lane) {
  SORN_ASSERT(lanes > 0, "need at least one lane");
  SORN_ASSERT(lane >= 0 && lane < lanes, "lane index out of range");
  return period * lane / lanes;
}

}  // namespace sorn
