// The set of matchings a physical OCS setup can realize.
//
// A wavelength-selective OCS (AWGR, as in Sirius and Fig. 2a of the paper)
// offers one matching per wavelength: lambda_k realizes the cyclic shift
// i -> (i + k) mod N. A schedule may only use matchings from the set the
// hardware provides; ScheduleBuilder validates against this.
#pragma once

#include <optional>
#include <vector>

#include "topo/matching.h"

namespace sorn {

class MatchingSet {
 public:
  // The AWGR wavelength family: shifts k = 1 .. n-1 (k = 0 would be a
  // loopback and is excluded). This family suffices to realize any
  // circulant logical topology, including all SORN clique schedules over
  // contiguous equal cliques.
  static MatchingSet awgr_family(NodeId n);

  // An arbitrary explicit set (e.g. a crossbar OCS with precomputed
  // configurations).
  explicit MatchingSet(std::vector<Matching> matchings);

  NodeId node_count() const { return n_; }
  std::size_t size() const { return matchings_.size(); }
  const Matching& at(std::size_t i) const { return matchings_[i]; }

  // Index of the given matching in the set, if present.
  std::optional<std::size_t> find(const Matching& m) const;

  // True when every (src, dst) pair with src != dst is covered by some
  // matching — the precondition for full logical flexibility (paper Sec. 5,
  // "Expressivity").
  bool covers_all_pairs() const;

 private:
  NodeId n_ = 0;
  std::vector<Matching> matchings_;
};

}  // namespace sorn
