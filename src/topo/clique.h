// Clique assignment: the macro-scale grouping of nodes (paper Sec. 3).
//
// A CliqueAssignment maps every node to a clique id. Cliques are the unit at
// which SORN concentrates bandwidth and at which the control plane measures
// and predicts aggregate demand.
#pragma once

#include <vector>

#include "util/types.h"

namespace sorn {

class CliqueAssignment;

// Result of padding an unequal-clique assignment up to equal sizes with
// ghost nodes (see CliqueAssignment::padded_to_equal).
struct PaddedAssignment {
  // Equal-clique assignment over real + ghost nodes. Real nodes keep ids
  // [0, original N); ghosts occupy [original N, padded N).
  std::vector<CliqueId> clique_of;
  NodeId real_nodes = 0;
  NodeId padded_nodes = 0;

  bool is_ghost(NodeId node) const { return node >= real_nodes; }
};

class CliqueAssignment {
 public:
  CliqueAssignment() = default;

  // clique_of[i] is the clique of node i; clique ids must be dense in
  // [0, num_cliques) and every clique nonempty.
  explicit CliqueAssignment(std::vector<CliqueId> clique_of);

  // N nodes split into nc contiguous equal cliques; n must be divisible
  // by nc. This is the layout of the paper's analysis (Sec. 4) and of
  // Fig. 2d/e.
  static CliqueAssignment contiguous(NodeId n, CliqueId nc);

  // Every node its own clique: a flat (fully oblivious) network.
  static CliqueAssignment flat(NodeId n);

  NodeId node_count() const { return static_cast<NodeId>(clique_of_.size()); }
  CliqueId clique_count() const {
    return static_cast<CliqueId>(members_.size());
  }
  CliqueId clique_of(NodeId node) const {
    return clique_of_[static_cast<std::size_t>(node)];
  }
  const std::vector<NodeId>& members(CliqueId c) const {
    return members_[static_cast<std::size_t>(c)];
  }
  NodeId clique_size(CliqueId c) const {
    return static_cast<NodeId>(members(c).size());
  }
  // Position of a node within its clique's member list.
  NodeId index_in_clique(NodeId node) const {
    return index_in_clique_[static_cast<std::size_t>(node)];
  }
  bool same_clique(NodeId a, NodeId b) const {
    return clique_of(a) == clique_of(b);
  }
  // True when all cliques have equal size (required by the closed-form
  // analysis; the schedule builder also supports unequal cliques).
  bool equal_sized() const;

  // True when the assignment is the canonical block layout of
  // contiguous(): equal-sized cliques with clique c owning exactly nodes
  // [c*s, (c+1)*s) in order. The schedule builder emits O(1)-state shift
  // matchings (Matching::radix_shift) for this layout and falls back to
  // explicit permutation vectors otherwise (e.g. failure-masked
  // reassignments). Detected once at construction.
  bool contiguous_equal_blocks() const { return contiguous_equal_; }

  // Support for non-uniform clique sizes (paper Sec. 5): pad every clique
  // to the size of the largest with ghost nodes. Ghosts are dark ports —
  // they carry no traffic, and circuits pointing at them model the
  // structural cost of unequal cliques in an equal-matching schedule.
  // Build the schedule over the returned assignment and only inject
  // traffic between real nodes.
  PaddedAssignment padded_to_equal() const;

  bool operator==(const CliqueAssignment& other) const {
    return clique_of_ == other.clique_of_;
  }

 private:
  std::vector<CliqueId> clique_of_;
  std::vector<std::vector<NodeId>> members_;
  std::vector<NodeId> index_in_clique_;
  bool contiguous_equal_ = false;
};

}  // namespace sorn
