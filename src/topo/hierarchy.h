// Two-level spatial hierarchy: pods of nodes grouped into clusters.
//
// Paper Sec. 3: "Machines or racks in a datacenter are usually arranged
// into a spatial hierarchy of pods, clusters, or blocks"; Sec. 6 suggests
// extending SORN across the levels ("a node participates in independent
// schedules on each hierarchical level"). This type captures a *regular*
// two-level hierarchy — equal pod sizes and equal pods per cluster — which
// is what the hierarchical schedule builder requires.
#pragma once

#include "topo/clique.h"
#include "util/types.h"

namespace sorn {

// Demand shares per hierarchy level (computed by traffic/patterns.h's
// hier_locality, which lives above the topo layer).
struct HierLocality {
  double pod = 0.0;      // x1: same-pod share of demand
  double cluster = 0.0;  // x2: same-cluster, different-pod share
  double global() const { return 1.0 - pod - cluster; }  // x3
};

class Hierarchy {
 public:
  // nodes split into `clusters` clusters of `pods_per_cluster` pods each;
  // nodes must divide evenly.
  static Hierarchy regular(NodeId nodes, CliqueId clusters,
                           CliqueId pods_per_cluster);

  NodeId node_count() const { return nodes_; }
  CliqueId cluster_count() const { return clusters_; }
  CliqueId pods_per_cluster() const { return pods_per_cluster_; }
  CliqueId pod_count() const { return clusters_ * pods_per_cluster_; }
  NodeId pod_size() const { return pod_size_; }
  NodeId cluster_size() const { return pod_size_ * pods_per_cluster_; }

  CliqueId pod_of(NodeId node) const { return node / pod_size_; }
  CliqueId cluster_of(NodeId node) const {
    return pod_of(node) / pods_per_cluster_;
  }
  NodeId index_in_pod(NodeId node) const { return node % pod_size_; }
  // Position of the node within its cluster (pod-major order).
  NodeId position_in_cluster(NodeId node) const {
    return node % cluster_size();
  }
  NodeId node_at(CliqueId cluster, NodeId position) const {
    return cluster * cluster_size() + position;
  }

  bool same_pod(NodeId a, NodeId b) const { return pod_of(a) == pod_of(b); }
  bool same_cluster(NodeId a, NodeId b) const {
    return cluster_of(a) == cluster_of(b);
  }

  // The pod-level grouping as a CliqueAssignment (for reuse of flat-SORN
  // machinery and metrics).
  CliqueAssignment pods() const;
  // The cluster-level grouping.
  CliqueAssignment clusters() const;

 private:
  Hierarchy(NodeId nodes, CliqueId clusters, CliqueId pods_per_cluster,
            NodeId pod_size)
      : nodes_(nodes),
        clusters_(clusters),
        pods_per_cluster_(pods_per_cluster),
        pod_size_(pod_size) {}

  NodeId nodes_;
  CliqueId clusters_;
  CliqueId pods_per_cluster_;
  NodeId pod_size_;
};

}  // namespace sorn
