#include "topo/matching.h"

#include "util/assert.h"

namespace sorn {

Matching::Matching(std::vector<NodeId> dst_map) : dst_(std::move(dst_map)) {
  const auto n = static_cast<NodeId>(dst_.size());
  std::vector<bool> seen(dst_.size(), false);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId d = dst_[static_cast<std::size_t>(i)];
    SORN_ASSERT(d >= 0 && d < n, "matching destination out of range");
    SORN_ASSERT(!seen[static_cast<std::size_t>(d)],
                "matching destination map is not a permutation");
    seen[static_cast<std::size_t>(d)] = true;
  }
}

NodeId Matching::src_of(NodeId dst) const {
  for (NodeId i = 0; i < size(); ++i)
    if (dst_of(i) == dst) return i;
  return kNoNode;
}

Matching Matching::idle(NodeId n) {
  std::vector<NodeId> m(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) m[static_cast<std::size_t>(i)] = i;
  return Matching(std::move(m));
}

Matching Matching::cyclic_shift(NodeId n, NodeId k) {
  SORN_ASSERT(n > 0, "matching size must be positive");
  std::vector<NodeId> m(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i)
    m[static_cast<std::size_t>(i)] = static_cast<NodeId>((i + k) % n);
  return Matching(std::move(m));
}

bool Matching::is_perfect() const {
  for (NodeId i = 0; i < size(); ++i)
    if (is_idle(i)) return false;
  return true;
}

NodeId Matching::active_circuits() const {
  NodeId active = 0;
  for (NodeId i = 0; i < size(); ++i)
    if (!is_idle(i)) ++active;
  return active;
}

}  // namespace sorn
