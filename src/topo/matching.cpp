#include "topo/matching.h"

#include <array>

#include "util/assert.h"

namespace sorn {
namespace {

struct Level {
  NodeId n;
  NodeId k;
};

}  // namespace

Matching::Matching(std::vector<NodeId> dst_map)
    : form_(Form::kExplicit), dst_(std::move(dst_map)) {
  const auto n = static_cast<NodeId>(dst_.size());
  n_ = n;
  std::vector<bool> seen(dst_.size(), false);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId d = dst_[static_cast<std::size_t>(i)];
    SORN_ASSERT(d >= 0 && d < n, "matching destination out of range");
    SORN_ASSERT(!seen[static_cast<std::size_t>(d)],
                "matching destination map is not a permutation");
    seen[static_cast<std::size_t>(d)] = true;
  }
}

NodeId Matching::shift_dst(NodeId src) const {
  const NodeId a = src / stride1_;
  const NodeId r = static_cast<NodeId>(src - a * stride1_);
  const NodeId b = r / n3_;
  const NodeId c = static_cast<NodeId>(r - b * n3_);
  NodeId da = static_cast<NodeId>(a + k1_);
  if (da >= n1_) da = static_cast<NodeId>(da - n1_);
  NodeId db = static_cast<NodeId>(b + k2_);
  if (db >= n2_) db = static_cast<NodeId>(db - n2_);
  NodeId dc = static_cast<NodeId>(c + k3_);
  if (dc >= n3_) dc = static_cast<NodeId>(dc - n3_);
  return static_cast<NodeId>(da * stride1_ + db * n3_ + dc);
}

NodeId Matching::src_of(NodeId dst) const {
  if (form_ == Form::kShift) {
    if (n_ == 0) return kNoNode;
    const NodeId a = dst / stride1_;
    const NodeId r = static_cast<NodeId>(dst - a * stride1_);
    const NodeId b = r / n3_;
    const NodeId c = static_cast<NodeId>(r - b * n3_);
    NodeId sa = static_cast<NodeId>(a - k1_);
    if (sa < 0) sa = static_cast<NodeId>(sa + n1_);
    NodeId sb = static_cast<NodeId>(b - k2_);
    if (sb < 0) sb = static_cast<NodeId>(sb + n2_);
    NodeId sc = static_cast<NodeId>(c - k3_);
    if (sc < 0) sc = static_cast<NodeId>(sc + n3_);
    return static_cast<NodeId>(sa * stride1_ + sb * n3_ + sc);
  }
  for (NodeId i = 0; i < size(); ++i)
    if (dst_of(i) == dst) return i;
  return kNoNode;
}

Matching Matching::idle(NodeId n) {
  return radix_shift(1, 0, 1, 0, n, 0);
}

Matching Matching::cyclic_shift(NodeId n, NodeId k) {
  SORN_ASSERT(n > 0, "matching size must be positive");
  return radix_shift(1, 0, 1, 0, n, k);
}

Matching Matching::radix_shift(NodeId n1, NodeId k1, NodeId n2, NodeId k2,
                               NodeId n3, NodeId k3) {
  SORN_ASSERT(n1 > 0 && n2 > 0 && n3 > 0,
              "radix shift levels must be positive");
  // Canonicalize: reduce offsets mod their radix, drop radix-1 levels,
  // merge an outer level into its neighbor when the inner digit is
  // unshifted ((no,ko) over (ni,0) is the single shift (no*ni, ko*ni)),
  // then left-pad with (1, 0) so a pure cyclic shift always lands in the
  // innermost slot. Canonical parameters make shift-vs-shift operator==
  // a six-field compare for everything the builders emit.
  std::array<Level, 3> in = {
      Level{n1, static_cast<NodeId>(((k1 % n1) + n1) % n1)},
      Level{n2, static_cast<NodeId>(((k2 % n2) + n2) % n2)},
      Level{n3, static_cast<NodeId>(((k3 % n3) + n3) % n3)}};
  std::array<Level, 3> levels{};
  int count = 0;
  for (const Level& lv : in) {
    if (lv.n == 1) continue;
    if (lv.k == 0 && count > 0) {
      // Unshifted inner digit: fold into the outer shift.
      levels[count - 1] = Level{
          static_cast<NodeId>(levels[count - 1].n * lv.n),
          static_cast<NodeId>(levels[count - 1].k * lv.n)};
      continue;
    }
    levels[count++] = lv;
  }
  Matching m;
  m.form_ = Form::kShift;
  m.n_ = static_cast<NodeId>(n1 * n2 * n3);
  const int pad = 3 - count;
  const std::array<Level, 3> out = {
      pad >= 1 ? Level{1, 0} : levels[0],
      pad >= 2 ? Level{1, 0} : levels[count - 2],
      count >= 1 ? levels[count - 1] : Level{1, 0}};
  m.n1_ = out[0].n;
  m.k1_ = out[0].k;
  m.n2_ = out[1].n;
  m.k2_ = out[1].k;
  m.n3_ = out[2].n;
  m.k3_ = out[2].k;
  m.stride1_ = static_cast<NodeId>(m.n2_ * m.n3_);
  return m;
}

bool Matching::is_perfect() const {
  if (n_ == 0) return true;
  if (form_ == Form::kShift)
    // Any nonzero digit offset moves every node; all-zero fixes every node.
    return k1_ != 0 || k2_ != 0 || k3_ != 0;
  for (NodeId i = 0; i < size(); ++i)
    if (is_idle(i)) return false;
  return true;
}

NodeId Matching::active_circuits() const {
  if (form_ == Form::kShift)
    return (k1_ != 0 || k2_ != 0 || k3_ != 0) ? n_ : 0;
  NodeId active = 0;
  for (NodeId i = 0; i < size(); ++i)
    if (!is_idle(i)) ++active;
  return active;
}

bool Matching::operator==(const Matching& other) const {
  if (n_ != other.n_) return false;
  if (form_ == Form::kShift && other.form_ == Form::kShift &&
      n1_ == other.n1_ && n2_ == other.n2_ && n3_ == other.n3_)
    return k1_ == other.k1_ && k2_ == other.k2_ && k3_ == other.k3_;
  if (form_ == Form::kExplicit && other.form_ == Form::kExplicit)
    return dst_ == other.dst_;
  // Mixed forms, or shift forms whose factorizations differ: compare the
  // realized permutations. Cold path (set lookups and tests only).
  for (NodeId i = 0; i < n_; ++i)
    if (dst_of(i) != other.dst_of(i)) return false;
  return true;
}

Matching Matching::materialized() const {
  std::vector<NodeId> m(static_cast<std::size_t>(n_));
  for (NodeId i = 0; i < n_; ++i)
    m[static_cast<std::size_t>(i)] = dst_of(i);
  return Matching(std::move(m));
}

}  // namespace sorn
