#include "topo/matching_set.h"

#include "util/assert.h"

namespace sorn {

MatchingSet MatchingSet::awgr_family(NodeId n) {
  std::vector<Matching> family;
  family.reserve(static_cast<std::size_t>(n) - 1);
  for (NodeId k = 1; k < n; ++k) family.push_back(Matching::cyclic_shift(n, k));
  return MatchingSet(std::move(family));
}

MatchingSet::MatchingSet(std::vector<Matching> matchings)
    : matchings_(std::move(matchings)) {
  SORN_ASSERT(!matchings_.empty(), "matching set must be nonempty");
  n_ = matchings_.front().size();
  for (const auto& m : matchings_)
    SORN_ASSERT(m.size() == n_, "all matchings must have the same node count");
}

std::optional<std::size_t> MatchingSet::find(const Matching& m) const {
  for (std::size_t i = 0; i < matchings_.size(); ++i)
    if (matchings_[i] == m) return i;
  return std::nullopt;
}

bool MatchingSet::covers_all_pairs() const {
  std::vector<bool> covered(static_cast<std::size_t>(n_) *
                            static_cast<std::size_t>(n_));
  for (const auto& m : matchings_)
    for (NodeId i = 0; i < n_; ++i)
      if (!m.is_idle(i))
        covered[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                static_cast<std::size_t>(m.dst_of(i))] = true;
  for (NodeId i = 0; i < n_; ++i)
    for (NodeId j = 0; j < n_; ++j)
      if (i != j && !covered[static_cast<std::size_t>(i) *
                                 static_cast<std::size_t>(n_) +
                             static_cast<std::size_t>(j)])
        return false;
  return true;
}

}  // namespace sorn
