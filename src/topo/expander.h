// Random regular expander graphs, used as the Opera-like baseline topology
// (union of u rotating matchings) and by the failure blast-radius bench.
#pragma once

#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace sorn {

class Expander {
 public:
  // Union of `degree` random fixed-point-free matchings over n nodes
  // (parallel edges merged). This is the standard construction Opera uses
  // for its per-instant topology.
  static Expander random_regular(NodeId n, int degree, Rng& rng);

  NodeId node_count() const { return n_; }
  const std::vector<NodeId>& neighbors(NodeId node) const {
    return adj_[static_cast<std::size_t>(node)];
  }

  // BFS shortest path from src to dst (inclusive of both endpoints).
  // Empty when unreachable.
  std::vector<NodeId> shortest_path(NodeId src, NodeId dst) const;

  // Graph diameter (max over BFS from every node); intended for small n.
  int diameter() const;

 private:
  explicit Expander(std::vector<std::vector<NodeId>> adj);

  NodeId n_;
  std::vector<std::vector<NodeId>> adj_;
};

}  // namespace sorn
