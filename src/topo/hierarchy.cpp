#include "topo/hierarchy.h"

#include "util/assert.h"

namespace sorn {

Hierarchy Hierarchy::regular(NodeId nodes, CliqueId clusters,
                             CliqueId pods_per_cluster) {
  SORN_ASSERT(clusters >= 1 && pods_per_cluster >= 1,
              "hierarchy dimensions must be positive");
  const CliqueId total_pods = clusters * pods_per_cluster;
  SORN_ASSERT(nodes % total_pods == 0,
              "nodes must divide evenly into pods");
  return Hierarchy(nodes, clusters, pods_per_cluster, nodes / total_pods);
}

CliqueAssignment Hierarchy::pods() const {
  return CliqueAssignment::contiguous(nodes_, pod_count());
}

CliqueAssignment Hierarchy::clusters() const {
  return CliqueAssignment::contiguous(nodes_, clusters_);
}

}  // namespace sorn
