// The logical topology a schedule emulates: the virtual-edge bandwidth graph.
//
// A circuit present in fraction l of slots is a virtual edge of bandwidth
// b*l (paper Sec. 4). This class materializes those fractions for analysis,
// tests (Fig. 2d/e), and the failure blast-radius experiment.
#pragma once

#include <vector>

#include "topo/clique.h"
#include "topo/schedule.h"

namespace sorn {

class LogicalTopology {
 public:
  explicit LogicalTopology(const CircuitSchedule& schedule);

  NodeId node_count() const { return n_; }

  // Fraction of node bandwidth on the virtual edge src -> dst.
  double edge_fraction(NodeId src, NodeId dst) const {
    return frac_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(dst)];
  }

  // Out-degree in the virtual graph (number of distinct neighbors).
  NodeId degree(NodeId node) const;

  // Total bandwidth fraction node spends inside / outside its clique.
  double intra_fraction(NodeId node, const CliqueAssignment& cliques) const;
  double inter_fraction(NodeId node, const CliqueAssignment& cliques) const;

  // Aggregate bandwidth fraction from clique a to clique b (sum of member
  // edge fractions, normalized by clique size: per-node average).
  double clique_bandwidth(CliqueId a, CliqueId b,
                          const CliqueAssignment& cliques) const;

 private:
  NodeId n_;
  std::vector<double> frac_;
};

}  // namespace sorn
